(* The fault-tolerance layer: retry/backoff on virtual time, source
   policies (fail-fast / skip / stale snapshot), wrapper quarantine,
   binary corruption offsets, and the seeded fault-injection harness
   driving the two end-to-end properties — degraded builds stay
   link-consistent (jobs ∈ {1,4}), and a build after the faults clear
   is byte-identical to one that never faulted. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let job_levels = [ 1; 4 ]

(* --- retry / backoff --- *)

let backoff =
  {
    Fault.Policy.attempts = 5;
    base_delay_ms = 100.;
    multiplier = 2.;
    max_delay_ms = 500.;
    deadline_ms = infinity;
  }

let schedule_exponential_capped () =
  Alcotest.(check (list (float 0.001)))
    "schedule" [ 100.; 200.; 400.; 500. ]
    (Fault.Retry.schedule backoff);
  Alcotest.(check (list (float 0.001)))
    "no_retry has no waits" []
    (Fault.Retry.schedule Fault.Policy.no_retry)

let retry_succeeds_after_failures () =
  let clock, sleeps = Fault.Clock.virtual_ () in
  let calls = ref 0 in
  let r =
    Fault.Retry.run ~clock ~retry:backoff (fun ~attempt ->
        incr calls;
        if attempt < 2 then failwith "flaky" else "ok")
  in
  check_bool "succeeded" true (r = Ok "ok");
  check_int "three calls" 3 !calls;
  Alcotest.(check (list (float 0.001)))
    "slept the schedule prefix" [ 100.; 200. ] (sleeps ())

let retry_exhausts_attempts () =
  let clock, sleeps = Fault.Clock.virtual_ () in
  let retry = { backoff with Fault.Policy.attempts = 3 } in
  let r =
    Fault.Retry.run ~clock ~retry (fun ~attempt:_ -> failwith "down")
  in
  (match r with
   | Error (Failure msg, attempts) ->
     check_string "last exception" "down" msg;
     check_int "attempts" 3 attempts
   | _ -> Alcotest.fail "expected Error after 3 attempts");
  check_int "two waits" 2 (List.length (sleeps ()))

let retry_deadline_truncates () =
  let clock, sleeps = Fault.Clock.virtual_ () in
  let retry = { backoff with Fault.Policy.deadline_ms = 250. } in
  let r =
    Fault.Retry.run ~clock ~retry (fun ~attempt:_ -> failwith "down")
  in
  (* delays would be 100,200,400,500 — but 100 elapsed + 200 > 250,
     so only the first wait happens *)
  (match r with
   | Error (_, attempts) -> check_int "gave up after 2 attempts" 2 attempts
   | Ok _ -> Alcotest.fail "expected exhaustion");
  Alcotest.(check (list (float 0.001))) "one wait" [ 100. ] (sleeps ())

(* --- source policies --- *)

let quick_retry attempts =
  { Fault.Policy.no_retry with Fault.Policy.attempts; base_delay_ms = 10. }

let failing_source ~policy name =
  Mediator.Source.make ~policy ~name (fun () -> failwith (name ^ " down"))

let good_graph () =
  let g = Graph.create ~name:"A" () in
  let x = Graph.new_node g "x1" in
  Graph.add_to_collection g "As" x;
  Graph.add_edge g x "name" (Graph.V (Value.String "one"));
  g

let fail_fast_reraises () =
  let clock, _ = Fault.Clock.virtual_ () in
  let s = failing_source ~policy:Fault.Policy.fail_fast "ff" in
  check_bool "raises" true
    (try
       ignore (Mediator.Source.load_with ~clock s);
       false
     with Failure _ -> true)

let skip_source_records_and_skips () =
  let clock, sleeps = Fault.Clock.virtual_ () in
  let fault = Fault.ctx () in
  let s =
    failing_source
      ~policy:(Fault.Policy.skip_source ~retry:(quick_retry 3) ())
      "flaky"
  in
  check_bool "skipped" true
    (Mediator.Source.load_with ~clock ~fault s = None);
  check_int "one report" 1 (Fault.fault_count fault);
  check_int "two backoff waits" 2 (List.length (sleeps ()));
  let r = List.hd (Fault.reports fault) in
  check_bool "ingest stage" true (r.Fault.f_stage = Fault.Ingest);
  check_string "source" "flaky" r.Fault.f_source;
  check_bool "cause mentions attempts" true
    (Test_cli.contains r.Fault.f_cause "3 attempt")

let retry_recovers_without_fault () =
  let clock, _ = Fault.Clock.virtual_ () in
  let fault = Fault.ctx () in
  let calls = ref 0 in
  let s =
    Mediator.Source.make
      ~policy:(Fault.Policy.skip_source ~retry:(quick_retry 3) ())
      ~name:"eventually"
      (fun () ->
        incr calls;
        if !calls < 3 then failwith "not yet" else good_graph ())
  in
  check_bool "loaded" true
    (Mediator.Source.load_with ~clock ~fault s <> None);
  check_int "three attempts" 3 !calls;
  check_int "no faults on eventual success" 0 (Fault.fault_count fault)

let stale_serves_snapshot () =
  let clock, _ = Fault.Clock.virtual_ () in
  let fault = Fault.ctx () in
  let snapshots = Repository.Store.create () in
  let s =
    Mediator.Source.make
      ~policy:(Fault.Policy.stale ~retry:(quick_retry 1) 1)
      ~name:"st" good_graph
  in
  (match Mediator.Source.load_with ~clock ~snapshots ~fault s with
   | Some g -> check_int "fresh load" 1 (Graph.collection_size g "As")
   | None -> Alcotest.fail "initial load failed");
  check_bool "snapshot persisted" true
    (Repository.Store.mem snapshots "source:st");
  Mediator.Source.update s (fun () -> failwith "export broke");
  (match Mediator.Source.load_with ~clock ~snapshots ~fault s with
   | Some g -> check_int "stale graph served" 1 (Graph.collection_size g "As")
   | None -> Alcotest.fail "stale snapshot not served");
  check_int "staleness recorded" 1 (Fault.fault_count fault);
  check_bool "cause mentions stale" true
    (Test_cli.contains
       (List.hd (Fault.reports fault)).Fault.f_cause
       "stale snapshot (1 version(s) behind)")

let stale_age_exceeded_skips () =
  let clock, _ = Fault.Clock.virtual_ () in
  let fault = Fault.ctx () in
  let s =
    Mediator.Source.make
      ~policy:(Fault.Policy.stale ~retry:(quick_retry 1) 0)
      ~name:"st0" good_graph
  in
  ignore (Mediator.Source.load_with ~clock ~fault s);
  Mediator.Source.update s (fun () -> failwith "export broke");
  check_bool "no snapshot young enough" true
    (Mediator.Source.load_with ~clock ~fault s = None);
  check_bool "cause mentions skip" true
    (Test_cli.contains
       (List.hd (List.rev (Fault.reports fault))).Fault.f_cause
       "no usable snapshot")

let warehouse_skips_failed_source () =
  let clock, _ = Fault.Clock.virtual_ () in
  let fault = Fault.ctx () in
  let good = Mediator.Source.of_graph ~name:"a" (good_graph ()) in
  let bad =
    failing_source
      ~policy:(Fault.Policy.skip_source ~retry:(quick_retry 2) ())
      "b"
  in
  let w =
    Mediator.Warehouse.create ~clock ~fault ~sources:[ good; bad ]
      ~mappings:
        [
          Mediator.Gav.copy_collection ~source:"a" ~collection:"As" ();
          Mediator.Gav.copy_collection ~source:"b" ~collection:"Bs" ();
        ]
      ()
  in
  let g = Mediator.Warehouse.graph w in
  check_int "good source integrated" 1 (Graph.collection_size g "As");
  check_int "failed source contributed nothing" 0
    (Graph.collection_size g "Bs");
  check_bool "fault surfaced" true (Mediator.Warehouse.faults w <> [])

(* --- wrapper quarantine --- *)

let csv_strict_positions () =
  (match Wrappers.Csv.table_of_string ~name:"t" "a,b\n1,x\"y\n" with
   | exception Wrappers.Csv.Csv_error (msg, line, col) ->
     check_string "message" "quote inside unquoted field" msg;
     check_int "line" 2 line;
     check_int "column" 4 col
   | _ -> Alcotest.fail "stray quote must abort the strict load");
  match Wrappers.Csv.table_of_string ~name:"t" "a,b\n1,\"oops" with
  | exception Wrappers.Csv.Csv_error (msg, line, _) ->
    check_string "message" "unterminated quoted field" msg;
    check_int "line" 2 line
  | _ -> Alcotest.fail "unterminated quote must abort the strict load"

let csv_quarantines_ragged_rows () =
  let fault = Fault.ctx () in
  let src = "id,name\np1,Alice\np2\np3,Carol,extra\np4,Dave\n" in
  let tbl = Wrappers.Csv.table_of_string ~fault ~name:"People" src in
  check_int "good rows kept" 2 (List.length tbl.Wrappers.Csv.rows);
  check_int "ragged rows quarantined" 2 (Fault.fault_count fault);
  List.iter
    (fun (r : Fault.report) ->
      check_string "source" "People" r.Fault.f_source;
      check_bool "located by line" true
        (Test_cli.contains r.Fault.f_location "line");
      check_bool "cause names raggedness" true
        (Test_cli.contains r.Fault.f_cause "ragged row"))
    (Fault.reports fault)

let csv_resyncs_after_bad_quote () =
  let fault = Fault.ctx () in
  let src = "id,name\np1,Alice\np2,Bo\"b\np3,Carol\n" in
  let tbl = Wrappers.Csv.table_of_string ~fault ~name:"People" src in
  check_int "rows after the bad one still load" 2
    (List.length tbl.Wrappers.Csv.rows);
  check_int "one quarantine" 1 (Fault.fault_count fault);
  check_bool "excerpt quotes the raw row" true
    (Test_cli.contains
       (List.hd (Fault.reports fault)).Fault.f_excerpt
       "p2,Bo")

let bibtex_quarantines_bad_entry () =
  let fault = Fault.ctx () in
  let src =
    "@article{good1,\n  title = {One},\n  author = {A. Author}\n}\n\n\
     @article{bad1\n  title missing comma}\n\n\
     @article{good2,\n  title = {Two},\n  author = {B. Author}\n}\n"
  in
  let entries = Wrappers.Bibtex.parse_entries ~fault src in
  check_int "good entries survive" 2 (List.length entries);
  Alcotest.(check (list string))
    "in order" [ "good1"; "good2" ]
    (List.map (fun e -> e.Wrappers.Bibtex.key) entries);
  check_int "one quarantine" 1 (Fault.fault_count fault);
  let r = List.hd (Fault.reports fault) in
  check_bool "located by entry" true
    (Test_cli.contains r.Fault.f_location "entry");
  check_bool "excerpt shows the bad entry" true
    (Test_cli.contains r.Fault.f_excerpt "@article{bad1")

let structured_quarantines_bad_line () =
  let fault = Fault.ctx () in
  let src =
    "id: p1\nname: Alice\n\nid: p2\nthis line has no separator\nname: Bob\n"
  in
  let g, os = Wrappers.Structured_file.load ~fault src in
  check_int "both blocks load" 2 (List.length os);
  check_int "one quarantine" 1 (Fault.fault_count fault);
  check_bool "p2 keeps its good fields" true
    (match Graph.find_node g "p2" with
     | Some o -> Graph.attr_value g o "name" = Some (Value.String "Bob")
     | None -> false);
  check_bool "excerpt is the bad line" true
    (Test_cli.contains
       (List.hd (Fault.reports fault)).Fault.f_excerpt
       "no separator")

let html_pages_quarantined_by_injection () =
  let inject =
    Fault.Inject.create ~seed:5 ~p_parse:1.0 ~targets:[ "HTML" ] ()
  in
  let fault = Fault.ctx ~inject () in
  let g, os =
    Wrappers.Html_wrapper.load_pages ~fault
      [ ("one", "<title>One</title>"); ("two", "<title>Two</title>") ]
  in
  check_int "every page quarantined" 0 (List.length os);
  check_int "every page reported" 2 (Fault.fault_count fault);
  check_int "graph holds no pages" 0 (Graph.collection_size g "Pages")

let synth_corruption_is_opt_in () =
  let a = Wrappers.Synth.org_csv ~people:30 ~orgs:4 () in
  let b = Wrappers.Synth.org_csv ~corrupt:0 ~people:30 ~orgs:4 () in
  check_bool "corrupt:0 is byte-identical" true (a = b);
  let c = Wrappers.Synth.org_csv ~corrupt:40 ~people:30 ~orgs:4 () in
  check_bool "corrupt:40 differs" true (fst c <> fst a)

let synth_corrupt_sources_load_under_quarantine () =
  let people_csv, _ = Wrappers.Synth.org_csv ~corrupt:40 ~people:30 ~orgs:4 () in
  let fault = Fault.ctx () in
  let tbl = Wrappers.Csv.table_of_string ~fault ~name:"People" people_csv in
  check_bool "some rows quarantined" true (Fault.fault_count fault > 0);
  check_bool "some rows survive" true (tbl.Wrappers.Csv.rows <> []);
  let width = List.length tbl.Wrappers.Csv.headers in
  check_bool "surviving rows are rectangular" true
    (List.for_all
       (fun r -> List.length r = width)
       tbl.Wrappers.Csv.rows);
  let fault2 = Fault.ctx () in
  let entries =
    Wrappers.Bibtex.parse_entries ~fault:fault2
      (Wrappers.Synth.bibtex ~corrupt:40 ~entries:20 ())
  in
  check_bool "bad entries quarantined" true (Fault.fault_count fault2 > 0);
  check_bool "good entries survive" true (entries <> []);
  let fault3 = Fault.ctx () in
  let _, os =
    Wrappers.Structured_file.load ~fault:fault3
      (Wrappers.Synth.projects_file ~corrupt:40 ~projects:12 ~people:30 ())
  in
  check_bool "separator-less lines quarantined" true
    (Fault.fault_count fault3 > 0);
  check_int "every block still loads" 12 (List.length os)

(* --- binary corruption offsets --- *)

let binary_corrupt_offsets () =
  let s = Repository.Binary.encode (good_graph ()) in
  (match Repository.Binary.decode (String.sub s 0 (String.length s - 3)) with
   | exception Repository.Binary.Corrupt (_, off) ->
     check_bool "truncation detected past the magic" true (off > 0);
     check_bool "offset within the input" true (off <= String.length s - 3)
   | _ -> Alcotest.fail "truncated input must not decode");
  (match Repository.Binary.decode "XXXXXXXXXXXXXXXX" with
   | exception Repository.Binary.Corrupt (msg, off) ->
     check_int "bad magic is at offset 0" 0 off;
     check_bool "names the magic" true (Test_cli.contains msg "magic")
   | _ -> Alcotest.fail "bad magic must not decode");
  match Repository.Binary.decode (s ^ "junk") with
  | exception Repository.Binary.Corrupt (msg, off) ->
    check_int "trailing bytes located at the end" (String.length s) off;
    check_bool "names trailing bytes" true (Test_cli.contains msg "trailing")
  | _ -> Alcotest.fail "trailing bytes must not decode"

(* --- degraded builds: link consistency under injection --- *)

(* every internal href of every emitted page (placeholder or not) *)
let internal_hrefs (site : Template.Generator.site) =
  let refs = ref [] in
  List.iter
    (fun (p : Template.Generator.page) ->
      let html = p.Template.Generator.html in
      let marker = "href=\"" in
      let rec scan from =
        match
          if from >= String.length html then None
          else
            let rec find i =
              if i + String.length marker > String.length html then None
              else if String.sub html i (String.length marker) = marker then
                Some i
              else find (i + 1)
            in
            find from
        with
        | None -> ()
        | Some i ->
          let start = i + String.length marker in
          (match String.index_from_opt html start '"' with
           | None -> ()
           | Some j ->
             let url = String.sub html start (j - start) in
             if
               (not (Test_cli.contains url "://"))
               && String.length url > 5
               && Filename.check_suffix url ".html"
             then refs := url :: !refs;
             scan (j + 1))
      in
      scan 0)
    site.Template.Generator.pages;
  !refs

let placeholder_count (site : Template.Generator.site) =
  List.length
    (List.filter Template.Generator.is_placeholder
       site.Template.Generator.pages)

let degraded_builds_stay_link_consistent =
  List.map
    (fun (name, def, data) ->
      t
        (Printf.sprintf
           "%s: degraded build is link-consistent and jobs-independent" name)
        (fun () ->
          let built =
            List.map
              (fun jobs ->
                let inject = Fault.Inject.create ~seed:42 ~p_render:0.4 () in
                let fault = Fault.ctx ~inject () in
                let b =
                  Strudel.Site.build ~jobs ~on_error:Fault.Degrade ~fault
                    ~data def
                in
                let site = b.Strudel.Site.site in
                let urls =
                  List.map
                    (fun (p : Template.Generator.page) ->
                      p.Template.Generator.url)
                    site.Template.Generator.pages
                in
                (* no page vanished: every internal link still resolves
                   to an emitted page, placeholders included *)
                List.iter
                  (fun href ->
                    check_bool
                      (Printf.sprintf "%s jobs=%d link %s resolves" name jobs
                         href)
                      true (List.mem href urls))
                  (internal_hrefs site);
                (* one placeholder per recorded render fault *)
                let render_faults =
                  List.filter
                    (fun (r : Fault.report) -> r.Fault.f_stage = Fault.Render)
                    b.Strudel.Site.faults
                in
                check_int
                  (Printf.sprintf "%s jobs=%d placeholders = faults" name
                     jobs)
                  (List.length render_faults)
                  (placeholder_count site);
                let m = Strudel.Site.manifest b in
                check_bool
                  (Printf.sprintf "%s jobs=%d manifest tracks degradation"
                     name jobs)
                  (b.Strudel.Site.faults <> [])
                  (Fault.Manifest.exit_code m = 3);
                b)
              job_levels
          in
          match built with
          | [ b1; b4 ] ->
            check_bool
              (Printf.sprintf "%s degraded pages identical across jobs" name)
              true
              (Test_parallel.page_triples b1.Strudel.Site.site
              = Test_parallel.page_triples b4.Strudel.Site.site);
            check_string
              (Printf.sprintf "%s faults.json identical across jobs" name)
              (Fault.Manifest.to_json (Strudel.Site.manifest b1))
              (Fault.Manifest.to_json (Strudel.Site.manifest b4))
          | _ -> assert false))
    (Test_parallel.sites_under_test ())

let injection_actually_fires () =
  (* the harness is vacuous if seed 42 never fails a page anywhere *)
  let total =
    List.fold_left
      (fun acc (_, def, data) ->
        let inject = Fault.Inject.create ~seed:42 ~p_render:0.4 () in
        let fault = Fault.ctx ~inject () in
        let b =
          Strudel.Site.build ~on_error:Fault.Degrade ~fault ~data def
        in
        acc + placeholder_count b.Strudel.Site.site)
      0
      (Test_parallel.sites_under_test ())
  in
  check_bool "some pages degraded across the example sites" true (total > 0)

(* --- recovery: faults clear, output converges --- *)

let recovery_restores_clean_bytes =
  List.map
    (fun (name, def, data) ->
      t (Printf.sprintf "%s: build after faults clear is byte-identical" name)
        (fun () ->
          let clean = Strudel.Site.build ~data def in
          let reference =
            Test_parallel.page_triples clean.Strudel.Site.site
          in
          List.iter
            (fun jobs ->
              let inject =
                Fault.Inject.create ~seed:7 ~p_render:0.5 ()
              in
              let fault = Fault.ctx ~inject () in
              let degraded =
                Strudel.Site.build ~jobs ~on_error:Fault.Degrade ~fault ~data
                  def
              in
              ignore degraded;
              (* the faults "clear": same pipeline, injector disarmed *)
              Fault.Inject.disarm inject;
              let fault2 = Fault.ctx ~inject () in
              let recovered =
                Strudel.Site.build ~jobs ~on_error:Fault.Degrade ~fault:fault2
                  ~data def
              in
              check_int
                (Printf.sprintf "%s jobs=%d recovered build is fault-free"
                   name jobs)
                0
                (Fault.fault_count fault2);
              check_bool
                (Printf.sprintf "%s jobs=%d recovered bytes = clean bytes"
                   name jobs)
                true
                (Test_parallel.page_triples recovered.Strudel.Site.site
                = reference))
            job_levels))
    (Test_parallel.sites_under_test ())

let incremental_rerenders_placeholders () =
  let data = Wrappers.Synth.news_graph ~articles:12 () in
  let def = Sites.Cnn.definition in
  let clean = Strudel.Site.build ~data def in
  let inject = Fault.Inject.create ~seed:7 ~p_render:0.5 () in
  let fault = Fault.ctx ~inject () in
  let degraded =
    Strudel.Site.build ~on_error:Fault.Degrade ~fault ~data def
  in
  let broken = placeholder_count degraded.Strudel.Site.site in
  check_bool "degraded build has placeholders" true (broken > 0);
  (* incremental rebuild over unchanged data, faults gone: fingerprints
     all match, but placeholders must not be reused *)
  let report =
    Strudel.Incremental.rebuild ~previous:degraded ~data ()
  in
  check_bool "placeholders re-rendered despite matching fingerprints" true
    (report.Strudel.Incremental.pages_rerendered >= broken);
  (* incremental page order is candidate order, not generator discovery
     order (the discipline of the incremental suite): compare sorted *)
  let sorted b = List.sort compare (Test_parallel.page_triples b) in
  check_bool "incremental recovery restores clean bytes" true
    (sorted report.Strudel.Incremental.built.Strudel.Site.site
    = sorted clean.Strudel.Site.site)

(* --- determinism of the harness --- *)

let injection_is_deterministic () =
  let data = Wrappers.Synth.news_graph ~articles:12 () in
  let run () =
    let inject = Fault.Inject.create ~seed:11 ~p_render:0.3 () in
    let fault = Fault.ctx ~inject () in
    let b =
      Strudel.Site.build ~on_error:Fault.Degrade ~fault ~data
        Sites.Cnn.definition
    in
    (Test_parallel.page_triples b.Strudel.Site.site, b.Strudel.Site.faults)
  in
  let p1, f1 = run () in
  let p2, f2 = run () in
  check_bool "pages identical across runs" true (p1 = p2);
  check_bool "fault reports identical across runs" true (f1 = f2)

let targeted_injection_scopes_faults () =
  let inject =
    Fault.Inject.create ~seed:3 ~p_parse:1.0 ~targets:[ "elsewhere" ] ()
  in
  let fault = Fault.ctx ~inject () in
  let tbl =
    Wrappers.Csv.table_of_string ~fault ~name:"People" "id,name\np1,Alice\n"
  in
  check_int "untargeted source untouched" 1
    (List.length tbl.Wrappers.Csv.rows);
  check_int "no reports" 0 (Fault.fault_count fault)

(* --- manifest round-trip --- *)

let sample_reports =
  [
    Fault.report ~stage:Fault.Ingest ~source:"bib" ~location:"entry 3, line 9"
      ~cause:"expected ',' after citation key"
      ~excerpt:"@article{bad\n  title \"quoted\"}" ();
    Fault.report ~stage:Fault.Render ~source:"site"
      ~location:"YearPage1997.html" ~cause:{|injected fault: render "Year(1997)"|}
      ();
  ]

let manifest_round_trips () =
  let m = Fault.Manifest.make ~site:"demo" sample_reports in
  check_int "degraded exits 3" 3 (Fault.Manifest.exit_code m);
  let m' = Fault.Manifest.of_json (Fault.Manifest.to_json m) in
  check_bool "faults survive the round trip" true
    (Fault.Manifest.faults m' = Fault.Manifest.faults m);
  check_bool "status recomputed" true
    (Fault.Manifest.status m' = Fault.Manifest.Degraded);
  let clean = Fault.Manifest.make ~site:"demo" [] in
  check_int "clean exits 0" 0 (Fault.Manifest.exit_code clean);
  let clean' = Fault.Manifest.of_json (Fault.Manifest.to_json clean) in
  check_bool "clean round trip" true (Fault.Manifest.faults clean' = [])

let manifest_rejects_malformed () =
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ String.escaped bad) true
        (try
           ignore (Fault.Manifest.of_json bad);
           false
         with Fault.Manifest.Manifest_error _ -> true))
    [
      "";
      "{";
      "not json";
      {|{"site": "x", "faults": "nope"}|};
      {|{"site": "x", "faults": [{"stage": "demolish"}]}|};
      {|{"site": "x"} trailing|};
    ]

(* printable content without the characters [clip] normalizes away, so
   the round trip must be exact *)
let field_arb =
  QCheck.string_small_of
    (QCheck.Gen.oneof
       [
         QCheck.Gen.char_range 'a' 'z';
         QCheck.Gen.oneofl [ '"'; '\\'; ' '; '{'; '}'; '['; ']'; ':'; ',' ];
       ])

let manifest_round_trip_prop =
  QCheck.Test.make ~count:100
    ~name:"manifest JSON round-trips arbitrary report fields"
    QCheck.(quad field_arb field_arb field_arb field_arb)
    (fun (source, location, cause, excerpt) ->
      let r =
        Fault.report ~stage:Fault.Integrate ~source ~location ~cause ~excerpt
          ()
      in
      let m = Fault.Manifest.make ~site:source [ r ] in
      Fault.Manifest.faults (Fault.Manifest.of_json (Fault.Manifest.to_json m))
      = [ r ])

let quarantine_never_raises_prop =
  QCheck.Test.make ~count:20
    ~name:"corrupt synthetic sources always load under a fault ctx"
    QCheck.(pair (int_bound 1000) (int_bound 50))
    (fun (seed, corrupt) ->
      let fault = Fault.ctx () in
      let people_csv, orgs_csv =
        Wrappers.Synth.org_csv ~seed ~corrupt ~people:20 ~orgs:3 ()
      in
      let p =
        Wrappers.Csv.table_of_string ~fault ~name:"People" people_csv
      in
      let o = Wrappers.Csv.table_of_string ~fault ~name:"Orgs" orgs_csv in
      ignore
        (Wrappers.Bibtex.parse_entries ~fault
           (Wrappers.Synth.bibtex ~seed ~corrupt ~entries:15 ()));
      ignore
        (Wrappers.Structured_file.load ~fault
           (Wrappers.Synth.projects_file ~seed ~corrupt ~projects:8
              ~people:20 ()));
      let rect (t : Wrappers.Csv.table) =
        List.for_all
          (fun r -> List.length r = List.length t.Wrappers.Csv.headers)
          t.Wrappers.Csv.rows
      in
      rect p && rect o)

let suite =
  [
    t "backoff schedule is exponential and capped" schedule_exponential_capped;
    t "retry succeeds after transient failures" retry_succeeds_after_failures;
    t "retry exhausts its attempt budget" retry_exhausts_attempts;
    t "deadline truncates the backoff schedule" retry_deadline_truncates;
    t "fail-fast policy re-raises" fail_fast_reraises;
    t "skip-source policy records and skips" skip_source_records_and_skips;
    t "retry recovers without recording a fault" retry_recovers_without_fault;
    t "stale policy serves the last good snapshot" stale_serves_snapshot;
    t "stale policy respects the age bound" stale_age_exceeded_skips;
    t "warehouse integrates around a failed source"
      warehouse_skips_failed_source;
    t "strict CSV errors carry line and column" csv_strict_positions;
    t "CSV quarantines ragged rows" csv_quarantines_ragged_rows;
    t "CSV resynchronizes after a bad quote" csv_resyncs_after_bad_quote;
    t "BibTeX quarantines a malformed entry" bibtex_quarantines_bad_entry;
    t "structured files quarantine separator-less lines"
      structured_quarantines_bad_line;
    t "HTML pages quarantined under injection"
      html_pages_quarantined_by_injection;
    t "synthetic corruption is opt-in and deterministic"
      synth_corruption_is_opt_in;
    t "corrupt synthetic sources load under quarantine"
      synth_corrupt_sources_load_under_quarantine;
    t "binary decoder reports corruption byte offsets" binary_corrupt_offsets;
  ]
  @ degraded_builds_stay_link_consistent
  @ [ t "seed 42 injects faults somewhere" injection_actually_fires ]
  @ recovery_restores_clean_bytes
  @ [
      t "incremental rebuild re-renders placeholders"
        incremental_rerenders_placeholders;
      t "same seed, same faults, same bytes" injection_is_deterministic;
      t "targeted injection spares other sources"
        targeted_injection_scopes_faults;
      t "manifest round-trips through JSON" manifest_round_trips;
      t "manifest rejects malformed JSON" manifest_rejects_malformed;
      QCheck_alcotest.to_alcotest manifest_round_trip_prop;
      QCheck_alcotest.to_alcotest quarantine_never_raises_prop;
    ]
