(* The strudeld serving layer: HTTP codec, admission gate, circuit
   breakers, the engine's differential against full builds, live epoch
   pickup, and the daemon's overload/timeout/drain contract — the
   behavior tests run on synthetic connections and the virtual clock
   (no sockets, no sleeps in the logic under test). *)

open Sgraph
module Http = Serve.Http
module Gate = Serve.Gate
module Breaker = Serve.Breaker
module Engine = Serve.Engine
module Daemon = Serve.Daemon
module CT = Strudel.Materialize.Click_time

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- helpers --- *)

let read_of_string s =
  let pos = ref 0 in
  fun b off len ->
    let n = min len (String.length s - !pos) in
    if n <= 0 then 0
    else begin
      Bytes.blit_string s !pos b off n;
      pos := !pos + n;
      n
    end

let parse_one s =
  match Http.read_request ~read:(read_of_string s) (Http.create_buf ()) with
  | Some r -> r
  | None -> Alcotest.fail "expected a request"

let req ?(meth = Http.GET) ?(headers = []) path =
  { Http.meth; target = path; path; version = "HTTP/1.1"; headers; body = "" }

let header resp name =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = name then Some v else None)
    resp.Http.resp_headers

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let await ?(timeout = 10.) msg cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

(* --- the mini federated site used by the epoch tests --- *)

let mini_query =
  {|{ CREATE RootPage() COLLECT Roots(RootPage()) }
{ WHERE As(x), x -> "name" -> n
  CREATE ItemPage(x)
  LINK RootPage() -> "Item" -> ItemPage(x),
       ItemPage(x) -> "name" -> n
  COLLECT Items(ItemPage(x)) }
OUTPUT MINI|}

let mini_templates =
  {
    Template.Generator.empty_templates with
    Template.Generator.by_collection =
      [
        ("Roots", "<h1>Items</h1>\n<SFMTLIST @Item ORDER=ascend KEY=name>\n");
        ("Items", "<h1><SFMT @name></h1>\n");
      ];
  }

let mini_def =
  Strudel.Site.define ~name:"mini" ~root_family:"RootPage"
    ~templates:mini_templates
    [ ("site", mini_query) ]

let mini_graph items =
  let g = Graph.create ~name:"A" () in
  List.iter
    (fun (n, v) ->
      let x = Graph.new_node g n in
      Graph.add_to_collection g "As" x;
      Graph.add_edge g x "name" (Graph.V (Value.String v)))
    items;
  g

let mini_warehouse items =
  let s = Mediator.Source.of_graph ~name:"a" (mini_graph items) in
  let w =
    Mediator.Warehouse.create ~sources:[ s ]
      ~mappings:[ Mediator.Gav.copy_collection ~source:"a" ~collection:"As" () ]
      ()
  in
  (s, w)

(* What a full build serves for this data — the differential oracle.
   Built over a fresh warehouse's mediated graph, the same shape the
   engine materializes from (mediated nodes carry prefixed names). *)
let mini_data items =
  let _, w = mini_warehouse items in
  Mediator.Warehouse.graph w

let mini_built items = Strudel.Site.build ~data:(mini_data items) mini_def

let body_of resp = resp.Http.resp_body
let status_of resp = resp.Http.status

let get ?worker ?headers engine path =
  Engine.handle ?worker engine (req ?headers path)

(* --- synthetic daemon transport --- *)

type sconn = {
  conn : Daemon.conn;
  out : Buffer.t;
  out_m : Mutex.t;
  sc_closed : bool ref;
}

let output sc =
  Mutex.lock sc.out_m;
  let s = Buffer.contents sc.out in
  Mutex.unlock sc.out_m;
  s

(* [input] is delivered then EOF; [mode] perturbs the transport:
   `Read_times_out raises Timeout on the first read, `Write_fails
   raises Client_closed on the first write (the EPIPE case). *)
let mk_conn ?(mode = `Ok) input =
  let pos = ref 0 in
  let out = Buffer.create 256 in
  let out_m = Mutex.create () in
  let closed = ref false in
  let read b off len =
    if mode = `Read_times_out then raise Daemon.Timeout;
    if !closed then raise Daemon.Client_closed;
    let n = min len (String.length input - !pos) in
    if n <= 0 then 0
    else begin
      Bytes.blit_string input !pos b off n;
      pos := !pos + n;
      n
    end
  in
  let write s =
    if mode = `Write_fails then raise Daemon.Client_closed;
    if !closed then raise Daemon.Client_closed;
    Mutex.lock out_m;
    Buffer.add_string out s;
    Mutex.unlock out_m
  in
  let close () = closed := true in
  {
    conn =
      { Daemon.c_read = read; c_write = write; c_close = close;
        c_peer = "synthetic" };
    out;
    out_m;
    sc_closed = closed;
  }

(* Conns queued up front are delivered in order; the accept tick is a
   tiny real sleep so the loop isn't a busy spin. *)
let mk_listener conns =
  let q = Queue.create () in
  List.iter (fun c -> Queue.add c q) conns;
  let m = Mutex.create () in
  let closed = ref false in
  let accept () =
    Mutex.lock m;
    let r = if Queue.is_empty q then None else Some (Queue.pop q) in
    Mutex.unlock m;
    if r = None then Unix.sleepf 0.002;
    r
  in
  ({ Daemon.l_accept = accept; l_close = (fun () -> closed := true) }, closed)

let mk_latch () =
  let m = Mutex.create () in
  let c = Condition.create () in
  let opened = ref false in
  let entered = ref false in
  let wait () =
    Mutex.lock m;
    entered := true;
    while not !opened do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  let release () =
    Mutex.lock m;
    opened := true;
    Condition.broadcast c;
    Mutex.unlock m
  in
  let entered () =
    Mutex.lock m;
    let e = !entered in
    Mutex.unlock m;
    e
  in
  (wait, release, entered)

let ok_handler ~worker:_ _req = Http.response ~status:200 "ok\n"

let get_wire path = Printf.sprintf "GET %s HTTP/1.1\r\nhost: t\r\n\r\n" path

(* --- suites --- *)

let http_tests =
  [
    t "parses a request line, headers and keep-alive default" (fun () ->
        let r = parse_one "GET /a.html?x=1 HTTP/1.1\r\nHost: h\r\nX-A: b\r\n\r\n" in
        check_bool "GET" true (r.Http.meth = Http.GET);
        check_string "target" "/a.html?x=1" r.Http.target;
        check_string "path" "/a.html" r.Http.path;
        check_string "host lowercased" "h"
          (Option.get (Http.header r "HOST"));
        check_bool "keep-alive" true (Http.keep_alive r));
    t "connection: close and HTTP/1.0 disable keep-alive" (fun () ->
        let r = parse_one "GET / HTTP/1.1\r\nConnection: close\r\n\r\n" in
        check_bool "close" false (Http.keep_alive r);
        let r10 = parse_one "GET / HTTP/1.0\r\n\r\n" in
        check_bool "1.0 closes" false (Http.keep_alive r10));
    t "pipelined requests parse from one buffer" (fun () ->
        let buf = Http.create_buf () in
        let read = read_of_string "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n" in
        let a = Option.get (Http.read_request ~read buf) in
        let b = Option.get (Http.read_request ~read buf) in
        check_string "first" "/a" a.Http.path;
        check_string "second" "/b" b.Http.path;
        check_bool "then EOF" true (Http.read_request ~read buf = None));
    t "bad input raises Bad_request, not an unbounded read" (fun () ->
        let bad s =
          match parse_one s with
          | exception Http.Bad_request _ -> true
          | _ -> false
        in
        check_bool "garbage line" true (bad "NONSENSE\r\n\r\n");
        check_bool "absolute-form target" true
          (bad "GET http://x/ HTTP/1.1\r\n\r\n");
        check_bool "dot segments" true (bad "GET /../etc HTTP/1.1\r\n\r\n");
        check_bool "oversized request line" true
          (bad ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n")));
    t "serialize emits exact content-length; HEAD keeps it" (fun () ->
        let resp = Http.response ~status:200 "hello" in
        let wire = Http.serialize resp in
        check_bool "length" true (contains ~needle:"Content-Length: 5" wire);
        check_bool "body" true (contains ~needle:"\r\n\r\nhello" wire);
        let head = Http.serialize ~head_only:true resp in
        check_bool "head keeps entity length" true
          (contains ~needle:"Content-Length: 5" head);
        check_bool "head omits body" false (contains ~needle:"hello" head));
  ]

let gate_tests =
  [
    t "admits to the bound, sheds past it, readmits after release"
      (fun () ->
        let g = Gate.create ~max_inflight:2 in
        check_bool "1" true (Gate.try_admit g = Gate.Admitted);
        check_bool "2" true (Gate.try_admit g = Gate.Admitted);
        check_bool "3 shed" true (Gate.try_admit g = Gate.Shed);
        Gate.release g;
        check_bool "readmitted" true (Gate.try_admit g = Gate.Admitted);
        let s = Gate.stats g in
        check_int "admitted" 3 s.Gate.g_admitted;
        check_int "shed" 1 s.Gate.g_shed);
    t "draining refuses everything; wait_idle is the barrier" (fun () ->
        let g = Gate.create ~max_inflight:0 in
        check_bool "admit" true (Gate.try_admit g = Gate.Admitted);
        Gate.begin_drain g;
        check_bool "refused" true (Gate.try_admit g = Gate.Refused);
        check_bool "gives up while busy" false
          (Gate.wait_idle ~give_up:(fun () -> true) g);
        Gate.release g;
        check_bool "idle" true (Gate.wait_idle g));
  ]

let breaker_tests =
  [
    t "opens after threshold, half-opens after cooldown, closes on probe"
      (fun () ->
        let clock, _ = Fault.Clock.virtual_ () in
        let b = Breaker.create ~threshold:2 ~clock () in
        Breaker.failure b "page:p";
        check_bool "still closed" true (Breaker.check b "page:p" = Breaker.Proceed);
        Breaker.failure b "page:p";
        check_bool "open" true (Breaker.state b "page:p" = Breaker.Open);
        (match Breaker.check b "page:p" with
        | Breaker.Reject ms -> check_bool "cooldown left" true (ms > 0.)
        | Breaker.Proceed -> Alcotest.fail "expected rejection");
        clock.Fault.Clock.sleep_ms 60_000.;
        check_bool "probe let through" true
          (Breaker.check b "page:p" = Breaker.Proceed);
        check_bool "second probe rejected" true
          (match Breaker.check b "page:p" with Breaker.Reject _ -> true | _ -> false);
        Breaker.success b "page:p";
        check_bool "closed again" true (Breaker.state b "page:p" = Breaker.Closed);
        check_int "one trip" 1 (Breaker.trips b));
    t "failed probe re-opens with a longer cooldown" (fun () ->
        let clock, _ = Fault.Clock.virtual_ () in
        let retry =
          { Fault.Policy.default_retry with
            attempts = 4; base_delay_ms = 100.; multiplier = 2.;
            max_delay_ms = 10_000. }
        in
        let b = Breaker.create ~threshold:1 ~retry ~clock () in
        Breaker.failure b "k";
        let first =
          match Breaker.check b "k" with Breaker.Reject ms -> ms | _ -> 0.
        in
        clock.Fault.Clock.sleep_ms (first +. 1.);
        check_bool "probe" true (Breaker.check b "k" = Breaker.Proceed);
        Breaker.failure b "k";
        let second =
          match Breaker.check b "k" with Breaker.Reject ms -> ms | _ -> 0.
        in
        check_bool "backoff grew" true (second > first);
        check_bool "open key listed" true (Breaker.open_keys b = [ "k" ]));
  ]

let engine_static_tests =
  [
    t "differential: served bytes equal the full build's pages" (fun () ->
        let built = Sites.Paper_example.build () in
        let e =
          Engine.create ~source:(Engine.Static (Sites.Paper_example.data ()))
            Sites.Paper_example.definition
        in
        let pages = built.Strudel.Site.site.Template.Generator.pages in
        check_bool "some pages" true (List.length pages > 5);
        List.iter
          (fun (p : Template.Generator.page) ->
            let resp = get e ("/" ^ p.Template.Generator.url) in
            check_int ("status " ^ p.Template.Generator.url) 200
              (status_of resp);
            check_string ("bytes " ^ p.Template.Generator.url)
              p.Template.Generator.html (body_of resp))
          pages;
        (* "/" is the root page *)
        let root = get e "/" in
        check_int "root ok" 200 (status_of root);
        check_bool "root is one of the built pages" true
          (List.exists
             (fun (p : Template.Generator.page) ->
               p.Template.Generator.html = body_of root)
             pages));
    t "404, 405 and the operational endpoints" (fun () ->
        let e =
          Engine.create ~source:(Engine.Static (Sites.Paper_example.data ()))
            Sites.Paper_example.definition
        in
        check_int "404" 404 (status_of (get e "/no-such-page.html"));
        let post = Engine.handle e (req ~meth:Http.POST "/") in
        check_int "405" 405 (status_of post);
        check_string "allow" "GET, HEAD" (Option.get (header post "allow"));
        let hz = get e "/healthz" in
        check_int "healthz" 200 (status_of hz);
        check_bool "healthz ok" true (contains ~needle:"\"status\":\"ok\"" (body_of hz));
        check_int "readyz" 200 (status_of (get e "/readyz"));
        Engine.set_draining e true;
        check_int "readyz drains" 503 (status_of (get e "/readyz"));
        check_int "faultz" 200 (status_of (get e "/faultz")));
    t "etag revalidation: 304 on if-none-match, new tag per epoch entry"
      (fun () ->
        let e =
          Engine.create ~source:(Engine.Static (Sites.Paper_example.data ()))
            Sites.Paper_example.definition
        in
        let r1 = get e "/" in
        let tag = Option.get (header r1 "etag") in
        let r2 = get e ~headers:[ ("if-none-match", tag) ] "/" in
        check_int "304" 304 (status_of r2);
        check_string "304 empty body" "" (body_of r2);
        check_string "304 keeps etag" tag (Option.get (header r2 "etag"));
        let r3 = get e ~headers:[ ("if-none-match", "\"stale\"") ] "/" in
        check_int "mismatched tag re-serves" 200 (status_of r3));
    t "render cache: first request misses, repeat hits" (fun () ->
        let e =
          Engine.create ~source:(Engine.Static (Sites.Paper_example.data ()))
            Sites.Paper_example.definition
        in
        ignore (get e "/");
        let _, m1, _ = Option.get (Engine.cache_stats e) in
        ignore (get e "/");
        let h2, m2, _ = Option.get (Engine.cache_stats e) in
        check_int "one miss" 1 m1;
        check_int "no new miss" 1 m2;
        check_bool "hit recorded" true (h2 >= 1));
    t "click-time browse errors are structured (no escapes)" (fun () ->
        let ct = CT.start ~data:(Sites.Paper_example.data ())
            Sites.Paper_example.definition
        in
        let stranger = Graph.new_node (Graph.create ()) "not-in-this-site" in
        (match CT.try_browse ct stranger with
        | Error (CT.Unknown_object _) -> ()
        | Ok _ | Error (CT.Render_failed _) ->
          Alcotest.fail "expected Unknown_object");
        check_bool "browse raises Browse_error" true
          (match CT.browse ct stranger with
          | exception CT.Browse_error (CT.Unknown_object _) -> true
          | _ -> false));
    t "injected render failure: page-scoped 503 + manifest, breaker opens"
      (fun () ->
        let built = mini_built [ ("x1", "one"); ("x2", "two") ] in
        let victim =
          List.find
            (fun (p : Template.Generator.page) ->
              contains ~needle:"x1" (Oid.name p.Template.Generator.obj))
            built.Strudel.Site.site.Template.Generator.pages
        in
        let victim_name = Oid.name victim.Template.Generator.obj in
        let inject =
          Fault.Inject.create ~seed:7 ~p_render:1.0 ~targets:[ victim_name ] ()
        in
        Fault.Inject.arm inject;
        let fault = Fault.ctx ~inject () in
        let e =
          Engine.create ~fault ~breaker_threshold:1
            ~source:(Engine.Static (mini_data [ ("x1", "one"); ("x2", "two") ]))
            mini_def
        in
        let url = "/" ^ victim.Template.Generator.url in
        let r = get e url in
        check_int "503" 503 (status_of r);
        check_bool "manifest body" true
          (contains ~needle:"\"status\": \"degraded\"" (body_of r)
           || contains ~needle:"degraded" (body_of r));
        check_bool "retry-after present" true (header r "retry-after" <> None);
        (* breaker is now open: rejected without re-rendering *)
        let r2 = get e url in
        check_int "breaker 503" 503 (status_of r2);
        check_bool "page breaker open" true
          (List.mem ("page:" ^ victim.Template.Generator.url)
             (Breaker.open_keys (Engine.breaker e)));
        (* only that page degraded; the rest of the site serves *)
        check_int "root fine" 200 (status_of (get e "/"));
        check_bool "degraded" true (Engine.degraded e);
        (* disarm: the probe after cooldown would succeed; directly
           verify the render path recovered via a fresh engine *)
        Fault.Inject.disarm inject;
        let e2 =
          Engine.create ~fault:(Fault.ctx ~inject ())
            ~source:(Engine.Static (mini_data [ ("x1", "one"); ("x2", "two") ]))
            mini_def
        in
        check_int "recovered" 200 (status_of (get e2 url)));
  ]

let engine_epoch_tests =
  [
    t "refresh installs the new epoch atomically; bytes match a fresh build"
      (fun () ->
        let items1 = [ ("x1", "one"); ("x2", "two") ] in
        let items2 = [ ("x1", "one"); ("x2", "two!"); ("x3", "three") ] in
        let s, w = mini_warehouse items1 in
        let e = Engine.create ~source:(Engine.Federated w) mini_def in
        check_int "epoch 1" 1 (Engine.epoch e);
        check_bool "no-op refresh" false (Engine.refresh e);
        (* differential for epoch 1 *)
        let built1 = mini_built items1 in
        List.iter
          (fun (p : Template.Generator.page) ->
            check_string ("e1 " ^ p.Template.Generator.url)
              p.Template.Generator.html
              (body_of (get e ("/" ^ p.Template.Generator.url))))
          built1.Strudel.Site.site.Template.Generator.pages;
        (* the source publishes a new export *)
        Mediator.Source.update s (fun () -> mini_graph items2);
        check_bool "refresh rebuilds" true (Engine.refresh e);
        check_int "epoch 2" 2 (Engine.epoch e);
        let built2 = mini_built items2 in
        List.iter
          (fun (p : Template.Generator.page) ->
            let resp = get e ("/" ^ p.Template.Generator.url) in
            check_string ("e2 " ^ p.Template.Generator.url)
              p.Template.Generator.html (body_of resp);
            check_string "epoch header" "2"
              (Option.get (header resp "x-strudel-epoch")))
          built2.Strudel.Site.site.Template.Generator.pages);
    t "epoch swap invalidates exactly the pages whose reads changed"
      (fun () ->
        let items1 = [ ("x1", "one"); ("x2", "two") ] in
        let s, w = mini_warehouse items1 in
        let e = Engine.create ~source:(Engine.Federated w) mini_def in
        let url_of needle =
          let built = mini_built items1 in
          let p =
            List.find
              (fun (p : Template.Generator.page) ->
                contains ~needle (Oid.name p.Template.Generator.obj))
              built.Strudel.Site.site.Template.Generator.pages
          in
          "/" ^ p.Template.Generator.url
        in
        let u1 = url_of "x1" and u2 = url_of "x2" in
        ignore (get e u1);
        ignore (get e u2);
        let h0, m0, i0 = Option.get (Engine.cache_stats e) in
        check_int "two misses to warm" 2 m0;
        (* x2's name changes; x1 is untouched *)
        Mediator.Source.update s (fun () ->
            mini_graph [ ("x1", "one"); ("x2", "TWO") ]);
        check_bool "refreshed" true (Engine.refresh e);
        let r1 = get e u1 in
        let h1, m1, i1 = Option.get (Engine.cache_stats e) in
        check_int "unchanged page verifies: hit" (h0 + 1) h1;
        check_int "no invalidation for x1" i0 i1;
        check_int "no re-render for x1" m0 m1;
        check_int "still 200" 200 (status_of r1);
        let r2 = get e u2 in
        let _, _, i2 = Option.get (Engine.cache_stats e) in
        check_int "changed page invalidates" (i0 + 1) i2;
        check_bool "new bytes served" true
          (contains ~needle:"TWO" (body_of r2)));
    t "no request ever observes a half-refreshed epoch (concurrent hammer)"
      (fun () ->
        let items_of ep =
          [ ("x1", "one"); ("x2", "v" ^ string_of_int ep) ]
        in
        (* the oracle: root-page bytes for each epoch's data, computed
           from independent full builds before the daemon exists *)
        let expected =
          Array.init 5 (fun i ->
              if i = 0 then ""
              else
                let built = mini_built (items_of i) in
                let root =
                  List.find
                    (fun (p : Template.Generator.page) ->
                      contains ~needle:"RootPage"
                        (Oid.name p.Template.Generator.obj))
                    built.Strudel.Site.site.Template.Generator.pages
                in
                root.Template.Generator.html)
        in
        let s, w = mini_warehouse (items_of 1) in
        let e = Engine.create ~source:(Engine.Federated w) mini_def in
        let stop = Atomic.make false in
        let bad = Atomic.make 0 in
        let seen = Atomic.make 0 in
        let hammer =
          Domain.spawn (fun () ->
              while not (Atomic.get stop) do
                let resp = get ~worker:1 e "/" in
                let ep =
                  int_of_string (Option.get (header resp "x-strudel-epoch"))
                in
                Atomic.incr seen;
                if body_of resp <> expected.(ep) then Atomic.incr bad
              done)
        in
        for ep = 2 to 4 do
          Mediator.Source.update s (fun () -> mini_graph (items_of ep));
          check_bool "refreshed" true (Engine.refresh e);
          Unix.sleepf 0.01
        done;
        Atomic.set stop true;
        Domain.join hammer;
        check_int "no mixed-epoch responses" 0 (Atomic.get bad);
        check_bool "hammer actually ran" true (Atomic.get seen > 0);
        check_int "final epoch" 4 (Engine.epoch e));
    t "quarantined source degrades its refresh, never the process"
      (fun () ->
        let items = [ ("x1", "one") ] in
        let s =
          Mediator.Source.make ~name:"a"
            ~policy:(Fault.Policy.skip_source ~retry:Fault.Policy.no_retry ())
            (fun () -> mini_graph items)
        in
        let w =
          Mediator.Warehouse.create ~fault:(Fault.ctx ()) ~sources:[ s ]
            ~mappings:
              [ Mediator.Gav.copy_collection ~source:"a" ~collection:"As" () ]
            ()
        in
        let e = Engine.create ~source:(Engine.Federated w) mini_def in
        check_int "item served" 200
          (status_of (get e "/"));
        (* the next export is broken: the load fails and the policy
           quarantines the source *)
        Mediator.Source.update s (fun () -> failwith "db down");
        ignore (Engine.refresh e);
        check_bool "degraded" true (Engine.degraded e);
        let hz = get e "/healthz" in
        check_bool "healthz reports the source" true
          (contains ~needle:"\"a\"" (body_of hz));
        check_bool "healthz degraded" true
          (contains ~needle:"\"status\":\"degraded\"" (body_of hz));
        (* the site still answers *)
        check_int "root still serves" 200 (status_of (get e "/")));
  ]

let daemon_tests =
  [
    t "serves keep-alive requests on synthetic conns, drains clean"
      (fun () ->
        let sc = mk_conn (get_wire "/a" ^ get_wire "/b") in
        let listener, closed = mk_listener [ sc.conn ] in
        let d = Daemon.create ~handler:ok_handler () in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "both responses" (fun () ->
            (Daemon.stats d).Daemon.d_served >= 2);
        Daemon.stop d;
        Domain.join srv;
        check_int "exit 0" 0 (Daemon.exit_code d);
        check_bool "listener closed" true !closed;
        check_int "served" 2 (Daemon.stats d).Daemon.d_served;
        let out = output sc in
        check_bool "two 200s" true
          (contains ~needle:"HTTP/1.1 200" out
           && contains ~needle:"ok\n" out));
    t "overload sheds with 503 + retry-after past max-inflight" (fun () ->
        let wait, release, entered = mk_latch () in
        let handler ~worker:_ _req =
          wait ();
          Http.response ~status:200 "late\n"
        in
        let a = mk_conn (get_wire "/a") in
        let b = mk_conn (get_wire "/b") in
        let listener, _ = mk_listener [ a.conn; b.conn ] in
        let config =
          { Daemon.default_config with workers = 1; max_inflight = 1 }
        in
        let d = Daemon.create ~config ~handler () in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "A in flight" entered;
        await "B shed" (fun () -> (Daemon.stats d).Daemon.d_shed >= 1);
        let bout = output b in
        check_bool "503" true (contains ~needle:"HTTP/1.1 503" bout);
        check_bool "retry-after" true (contains ~needle:"Retry-After: 1" bout);
        check_bool "closes" true (contains ~needle:"Connection: close" bout);
        release ();
        await "A served" (fun () -> (Daemon.stats d).Daemon.d_served >= 1);
        Daemon.stop d;
        Domain.join srv;
        check_bool "A answered after the shed" true
          (contains ~needle:"late" (output a));
        check_int "exit 0" 0 (Daemon.exit_code d));
    t "request deadline: overrun answer becomes 503 (virtual clock)"
      (fun () ->
        let clock, _ = Fault.Clock.virtual_ () in
        let handler ~worker:_ _req =
          clock.Fault.Clock.sleep_ms 6_000.;
          Http.response ~status:200 "slow\n"
        in
        let sc = mk_conn (get_wire "/slow") in
        let listener, _ = mk_listener [ sc.conn ] in
        let config =
          { Daemon.default_config with workers = 1; deadline_ms = 5_000.;
            clock }
        in
        let d = Daemon.create ~config ~handler () in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "deadline hit" (fun () ->
            (Daemon.stats d).Daemon.d_deadlines >= 1);
        Daemon.stop d;
        Domain.join srv;
        let out = output sc in
        check_bool "503 deadline" true
          (contains ~needle:"HTTP/1.1 503" out
           && contains ~needle:"deadline exceeded" out);
        check_bool "slow body suppressed" false (contains ~needle:"slow" out));
    t "slow client: read timeout answers 408 and is counted" (fun () ->
        let sc = mk_conn ~mode:`Read_times_out "" in
        let listener, _ = mk_listener [ sc.conn ] in
        let d = Daemon.create ~handler:ok_handler () in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "timeout counted" (fun () ->
            (Daemon.stats d).Daemon.d_timeouts >= 1);
        Daemon.stop d;
        Domain.join srv;
        check_bool "408 written" true
          (contains ~needle:"HTTP/1.1 408" (output sc));
        check_int "exit 0" 0 (Daemon.exit_code d));
    t "vanished client (EPIPE) is a counted outcome; the next conn serves"
      (fun () ->
        let gone = mk_conn ~mode:`Write_fails (get_wire "/a") in
        let fine = mk_conn (get_wire "/b") in
        let listener, _ = mk_listener [ gone.conn; fine.conn ] in
        let config = { Daemon.default_config with workers = 1 } in
        let d = Daemon.create ~config ~handler:ok_handler () in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "abort counted" (fun () ->
            (Daemon.stats d).Daemon.d_client_aborts >= 1);
        await "next conn served" (fun () ->
            (Daemon.stats d).Daemon.d_served >= 1);
        Daemon.stop d;
        Domain.join srv;
        check_bool "b got its answer" true
          (contains ~needle:"HTTP/1.1 200" (output fine));
        check_int "exit 0, aborts are not failures" 0 (Daemon.exit_code d));
    t "SIGTERM drain: in-flight completes, new conns unserved, exit 0"
      (fun () ->
        let wait, release, entered = mk_latch () in
        let handler ~worker:_ _req =
          wait ();
          Http.response ~status:200 "finished\n"
        in
        let inflight = mk_conn (get_wire "/work") in
        let late = mk_conn (get_wire "/late") in
        let listener, closed = mk_listener [ inflight.conn ] in
        let d = Daemon.create ~handler () in
        Daemon.install_signal_handlers d;
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "request in flight" entered;
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        await "drain begins" (fun () -> Daemon.stopping d);
        await "listener closed" (fun () -> !closed);
        (* a connection arriving now is never accepted *)
        ignore late;
        release ();
        Domain.join srv;
        Sys.set_signal Sys.sigterm Sys.Signal_default;
        Sys.set_signal Sys.sigint Sys.Signal_default;
        check_bool "in-flight completed" true
          (contains ~needle:"finished" (output inflight));
        check_string "late conn untouched" "" (output late);
        check_int "clean exit" 0 (Daemon.exit_code d);
        check_int "nothing aborted" 0
          (Daemon.stats d).Daemon.d_aborted_inflight);
    t "drain deadline 0: in-flight is force-closed, exit 4" (fun () ->
        let wait, release, entered = mk_latch () in
        let handler ~worker:_ _req =
          wait ();
          Http.response ~status:200 "too late\n"
        in
        let sc = mk_conn (get_wire "/stuck") in
        let listener, _ = mk_listener [ sc.conn ] in
        let config =
          { Daemon.default_config with workers = 1; drain_deadline_ms = 0. }
        in
        let d = Daemon.create ~config ~handler () in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "in flight" entered;
        Daemon.stop d;
        await "force-closed" (fun () ->
            (Daemon.stats d).Daemon.d_aborted_inflight >= 1);
        check_bool "conn closed under the worker" true !(sc.sc_closed);
        release ();
        Domain.join srv;
        check_int "exit 4" 4 (Daemon.exit_code d));
    t "degraded drain exits 3" (fun () ->
        let sc = mk_conn (get_wire "/a") in
        let listener, _ = mk_listener [ sc.conn ] in
        let d =
          Daemon.create ~degraded:(fun () -> true) ~handler:ok_handler ()
        in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        await "served" (fun () -> (Daemon.stats d).Daemon.d_served >= 1);
        Daemon.stop d;
        Domain.join srv;
        check_int "exit 3" 3 (Daemon.exit_code d));
    t "real TCP smoke: ephemeral port, one request, drain" (fun () ->
        let e =
          Engine.create ~workers:2
            ~source:(Engine.Static (Sites.Paper_example.data ()))
            Sites.Paper_example.definition
        in
        let config = { Daemon.default_config with workers = 2 } in
        let d =
          Daemon.create ~config
            ~handler:(fun ~worker req -> Engine.handle ~worker e req)
            ()
        in
        let listener, port =
          Daemon.tcp_listener ~tick_ms:20. ~host:"127.0.0.1" ~port:0 ()
        in
        let srv = Domain.spawn (fun () -> Daemon.serve d listener) in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
        let wire = "GET /healthz HTTP/1.1\r\nhost: t\r\nConnection: close\r\n\r\n" in
        ignore (Unix.write_substring fd wire 0 (String.length wire));
        let buf = Buffer.create 256 in
        let b = Bytes.create 4096 in
        let rec slurp () =
          match Unix.read fd b 0 4096 with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf b 0 n;
            slurp ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
        in
        slurp ();
        Unix.close fd;
        let got = Buffer.contents buf in
        check_bool "200 over the wire" true (contains ~needle:"HTTP/1.1 200" got);
        check_bool "health body" true (contains ~needle:"\"status\"" got);
        Daemon.stop d;
        Domain.join srv;
        check_int "clean exit" 0 (Daemon.exit_code d));
  ]

let suite =
  http_tests @ gate_tests @ breaker_tests @ engine_static_tests
  @ engine_epoch_tests @ daemon_tests
