open Sgraph
open Template

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* a small site graph for rendering *)
let mk () =
  let g = Graph.create ~name:"tg" () in
  let o = Graph.new_node g "obj" in
  Graph.add_edge g o "title" (Graph.V (Value.String "Hello <World>"));
  Graph.add_edge g o "year" (Graph.V (Value.Int 1997));
  Graph.add_edge g o "author" (Graph.V (Value.String "Ann"));
  Graph.add_edge g o "author" (Graph.V (Value.String "Bob"));
  Graph.add_edge g o "ps" (Graph.V (Value.File (Value.Postscript, "p.ps")));
  Graph.add_edge g o "pic" (Graph.V (Value.File (Value.Image, "i.gif")));
  Graph.add_edge g o "site" (Graph.V (Value.Url "http://x.org"));
  let child = Graph.new_node g "child" in
  Graph.add_edge g child "name" (Graph.V (Value.String "Kid"));
  Graph.add_edge g child "rank" (Graph.V (Value.Int 2));
  let child2 = Graph.new_node g "child2" in
  Graph.add_edge g child2 "name" (Graph.V (Value.String "Ada"));
  Graph.add_edge g child2 "rank" (Graph.V (Value.Int 1));
  Graph.add_edge g o "kid" (Graph.N child);
  Graph.add_edge g o "kid" (Graph.N child2);
  (g, o)

let render_str ?(vars = []) g obj tpl =
  let ctx =
    {
      Teval.graph = g;
      vars;
      render_object =
        (fun _ctx mode o ->
          match mode with
          | Teval.Embed -> "[embed " ^ Oid.name o ^ "]"
          | Teval.Link_to (Some a) -> "[link " ^ Oid.name o ^ " as " ^ a ^ "]"
          | Teval.Link_to None -> "[link " ^ Oid.name o ^ "]");
      file_loader = (fun _ -> None);
      on_read = None;
    }
  in
  Teval.render ctx (Tparse.parse tpl) obj

let parsing =
  [
    t "plain html passes through" (fun () ->
        let g, o = mk () in
        check_str "plain" "<h1>x</h1>" (render_str g o "<h1>x</h1>"));
    t "unknown tags left alone" (fun () ->
        let g, o = mk () in
        check_str "p" "<p class=\"x\">y</p>" (render_str g o "<p class=\"x\">y</p>"));
    t "sfmt of string escapes html" (fun () ->
        let g, o = mk () in
        check_str "escaped" "Hello &lt;World&gt;" (render_str g o "<SFMT @title>"));
    t "sfmt of int" (fun () ->
        let g, o = mk () in
        check_str "int" "1997" (render_str g o "<SFMT @year>"));
    t "sfmt multivalued with delim" (fun () ->
        let g, o = mk () in
        check_str "authors" "Ann, Bob"
          (render_str g o {|<SFMT @author DELIM=", ">|}));
    t "sfmt missing attribute renders empty" (fun () ->
        let g, o = mk () in
        check_str "empty" "" (render_str g o "<SFMT @nope>"));
    t "case-insensitive tags" (fun () ->
        let g, o = mk () in
        check_str "lower" "1997" (render_str g o "<sfmt @year>"));
    t "parse error on unbalanced sif" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "<SIF @x>abc"); false
           with Tparse.Template_error _ -> true));
    t "parse error on stray selse" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "x<SELSE>y"); false
           with Tparse.Template_error _ -> true));
    t "quoted > inside tag body" (fun () ->
        let g, o = mk () in
        check_str "delim with >" "Ann->Bob"
          (render_str g o {|<SFMT @author DELIM="->">|}));
  ]

let value_rules =
  [
    t "postscript becomes a link" (fun () ->
        let g, o = mk () in
        check_str "ps link" {|<a href="p.ps">p.ps</a>|} (render_str g o "<SFMT @ps>"));
    t "postscript link with tag" (fun () ->
        let g, o = mk () in
        check_str "tagged" {|<a href="p.ps">Hello &lt;World&gt;</a>|}
          (render_str g o "<SFMT @ps LINK=@title>"));
    t "image becomes img" (fun () ->
        let g, o = mk () in
        check_str "img" {|<img src="i.gif" alt="">|} (render_str g o "<SFMT @pic>"));
    t "url becomes anchor" (fun () ->
        let g, o = mk () in
        check_str "url" {|<a href="http://x.org">http://x.org</a>|}
          (render_str g o "<SFMT @site>"));
    t "text file inlined by loader" (fun () ->
        let g, o = mk () in
        Graph.add_edge g o "abs" (Graph.V (Value.File (Value.Text, "a.txt")));
        let ctx =
          {
            Teval.graph = g;
            vars = [];
            render_object = (fun _ _ _ -> "");
            file_loader = (fun p -> if p = "a.txt" then Some "CONTENT" else None);
            on_read = None;
          }
        in
        check_str "inlined" "<pre>CONTENT</pre>"
          (Teval.render ctx (Tparse.parse "<SFMT @abs>") o));
    t "text file without loader is a link" (fun () ->
        let g, o = mk () in
        Graph.add_edge g o "abs" (Graph.V (Value.File (Value.Text, "a.txt")));
        check_str "link" {|<a href="a.txt">a.txt</a>|} (render_str g o "<SFMT @abs>"));
    t "internal object defaults to link" (fun () ->
        let g, o = mk () in
        check_bool "links" true
          (render_str g o {|<SFMT @kid DELIM="|">|} = "[link child]|[link child2]"));
    t "embed directive" (fun () ->
        let g, o = mk () in
        check_bool "embeds" true
          (render_str g o {|<SFMT @kid EMBED DELIM=";">|}
           = "[embed child];[embed child2]"));
    t "link with string tag" (fun () ->
        let g, o = mk () in
        check_bool "anchored" true
          (render_str g o {|<SFMT @kid LINK="here" DELIM=";">|}
           = "[link child as here];[link child2 as here]"));
  ]

let conditionals =
  [
    t "sif nonnull true branch" (fun () ->
        let g, o = mk () in
        check_str "then" "Y" (render_str g o "<SIF @title>Y<SELSE>N</SIF>"));
    t "sif nonnull false branch" (fun () ->
        let g, o = mk () in
        check_str "else" "N" (render_str g o "<SIF @nope>Y<SELSE>N</SIF>"));
    t "sif without selse" (fun () ->
        let g, o = mk () in
        check_str "empty" "" (render_str g o "<SIF @nope>Y</SIF>"));
    t "sif != NULL idiom" (fun () ->
        let g, o = mk () in
        check_str "present" "Y" (render_str g o "<SIF @year != NULL>Y</SIF>");
        check_str "absent" "" (render_str g o "<SIF @nope != NULL>Y</SIF>"));
    t "sif comparisons with coercion" (fun () ->
        let g, o = mk () in
        check_str "eq" "Y" (render_str g o {|<SIF @year = 1997>Y</SIF>|});
        check_str "eq str" "Y" (render_str g o {|<SIF @year = "1997">Y</SIF>|});
        check_str "lt" "Y" (render_str g o {|<SIF @year < 2000>Y</SIF>|});
        check_str "ge fail" "" (render_str g o {|<SIF @year >= 2000>Y</SIF>|}));
    t "sif AND OR NOT with parens" (fun () ->
        let g, o = mk () in
        check_str "and" "Y"
          (render_str g o {|<SIF @year = 1997 AND @title != NULL>Y</SIF>|});
        check_str "or" "Y"
          (render_str g o {|<SIF @nope OR @year = 1997>Y</SIF>|});
        check_str "not" "Y" (render_str g o {|<SIF NOT @nope>Y</SIF>|});
        check_str "parens" "Y"
          (render_str g o {|<SIF (@nope OR @year = 1997) AND @title>Y</SIF>|}));
    t "nested sif" (fun () ->
        let g, o = mk () in
        check_str "nest" "AB"
          (render_str g o "<SIF @title>A<SIF @year>B</SIF></SIF>"));
    t "internal object operand vs NULL" (fun () ->
        let g, o = mk () in
        check_str "node != NULL" "Y" (render_str g o {|<SIF @kid != NULL>Y</SIF>|}));
  ]

let iteration =
  [
    t "sfor binds variable" (fun () ->
        let g, o = mk () in
        check_str "vals" "[Ann][Bob]"
          (render_str g o "<SFOR a IN @author>[<SFMT @a>]</SFOR>"));
    t "sfor delim" (fun () ->
        let g, o = mk () in
        check_str "sep" "Ann--Bob"
          (render_str g o {|<SFOR a IN @author DELIM="--"><SFMT @a></SFOR>|}));
    t "sfor over internal objects with attribute access" (fun () ->
        let g, o = mk () in
        check_str "names" "Kid;Ada;"
          (render_str g o {|<SFOR k IN @kid><SFMT @k.name>;</SFOR>|}));
    t "sfor order by key ascend" (fun () ->
        let g, o = mk () in
        check_str "sorted" "Ada,Kid,"
          (render_str g o
             {|<SFOR k IN @kid ORDER=ascend KEY=rank><SFMT @k.name>,</SFOR>|}));
    t "sfor order descend" (fun () ->
        let g, o = mk () in
        check_str "sorted" "Kid,Ada,"
          (render_str g o
             {|<SFOR k IN @kid ORDER=descend KEY=rank><SFMT @k.name>,</SFOR>|}));
    t "sfor nested" (fun () ->
        let g, o = mk () in
        check_str "product" "(Ann:Kid)(Ann:Ada)(Bob:Kid)(Bob:Ada)"
          (render_str g o
             {|<SFOR a IN @author><SFOR k IN @kid>(<SFMT @a>:<SFMT @k.name>)</SFOR></SFOR>|}));
    t "sfmtlist" (fun () ->
        let g, o = mk () in
        check_str "ul"
          "<ul>\n<li>Ann</li>\n<li>Bob</li>\n</ul>"
          (render_str g o "<SFMTLIST @author>"));
    t "sfmtlist empty attr renders nothing" (fun () ->
        let g, o = mk () in
        check_str "nothing" "" (render_str g o "<SFMTLIST @nope>"));
    t "sfmt order directive" (fun () ->
        let g, o = mk () in
        check_str "desc" "Bob Ann"
          (render_str g o {|<SFMT @author ORDER=descend>|}));
    t "bounded traversal in attr expr" (fun () ->
        let g, o = mk () in
        check_str "two-hop" "Kid Ada" (render_str g o "<SFMT @kid.name>"));
  ]

(* qcheck: no raw markup from attribute values ever reaches the page *)
let printable_string =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 30))

let renders_escaped v_str =
  let g = Graph.create () in
  let o = Graph.new_node g "o" in
  Graph.add_edge g o "t" (Graph.V (Value.String v_str));
  let out = render_str g o "[<SFMT @t>]" in
  (* strip the brackets and check no unescaped markup chars remain *)
  let inner = String.sub out 1 (String.length out - 2) in
  not (String.contains inner '<')
  && not (String.contains inner '>')
  && (* '&' may appear only as an entity start; decode check: the output
        must re-decode to the input *)
  (let buf = Buffer.create 16 in
   let n = String.length inner in
   let i = ref 0 in
   let ok = ref true in
   while !i < n do
     if inner.[!i] = '&' then begin
       match String.index_from_opt inner !i ';' with
       | Some j ->
         (match String.sub inner (!i + 1) (j - !i - 1) with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | _ -> ok := false);
         i := j + 1
       | None -> ok := false; incr i
     end
     else begin
       Buffer.add_char buf inner.[!i];
       incr i
     end
   done;
   !ok && Buffer.contents buf = v_str)

let escaping_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"attribute values are fully escaped and decodable" ~count:500
         (QCheck.make ~print:(fun s -> s) printable_string)
         renders_escaped);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rendering total on random value kinds"
         ~count:300
         (QCheck.make
            QCheck.Gen.(
              oneof
                [
                  map (fun i -> Value.Int i) small_signed_int;
                  map (fun s -> Value.String s) printable_string;
                  map (fun s -> Value.Url ("http://" ^ s))
                    (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
                  map (fun s -> Value.File (Value.Postscript, s))
                    (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
                  return Value.Null;
                  map (fun b -> Value.Bool b) bool;
                ]))
         (fun v ->
           let g = Graph.create () in
           let o = Graph.new_node g "o" in
           Graph.add_edge g o "t" (Graph.V v);
           let _ = render_str g o "<SFMT @t>" in
           let _ = render_str g o "<SIF @t>x</SIF>" in
           let _ = render_str g o "<SFMTLIST @t>" in
           true));
  ]

let template_errors =
  [
    t "unknown directive rejected" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "<SFMT @x BOGUS=1>"); false
           with Tparse.Template_error _ -> true));
    t "bad ORDER value rejected" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "<SFMT @x ORDER=sideways>"); false
           with Tparse.Template_error _ -> true));
    t "DELIM requires a string" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "<SFMT @x DELIM=3>"); false
           with Tparse.Template_error _ -> true));
    t "SFOR without IN rejected" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "<SFOR a OF @x>y</SFOR>"); false
           with Tparse.Template_error _ -> true));
    t "unterminated tag rejected" (fun () ->
        check_bool "raises" true
          (try ignore (Tparse.parse "<SFMT @x"); false
           with Tparse.Template_error _ -> true));
  ]

let suite =
  parsing @ value_rules @ conditionals @ iteration @ escaping_props
  @ template_errors
