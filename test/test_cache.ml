(* Correctness of the dependency-tracked render cache: cache-assisted
   incremental rebuilds must equal cold full builds page-for-page under
   random edit scripts; traces must hit on unchanged graphs, invalidate
   exactly on observed reads, and die wholesale on template changes. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let page_map = Test_end_to_end_props.page_map
let articles = Test_end_to_end_props.articles

(* --- the fuzz property: random edit scripts --- *)

let cache_rebuild_equals_full ~jobs muts =
  let data0 = Sites.Cnn.data ~articles () in
  let cache = Strudel.Render_cache.create () in
  let previous =
    Strudel.Site.build ~render_cache:cache ~data:data0 Sites.Cnn.definition
  in
  let data1 = Sites.Cnn.data ~articles () in
  Test_end_to_end_props.apply_mutations data1 articles muts;
  let inc =
    Strudel.Incremental.rebuild ~jobs ~cache ~previous ~data:data1 ()
  in
  let full = Strudel.Site.build ~data:data1 Sites.Cnn.definition in
  page_map inc.Strudel.Incremental.built.Strudel.Site.site
  = page_map full.Strudel.Site.site

(* --- unit tests --- *)

let no_change_all_hits () =
  let data = Sites.Cnn.data ~articles:12 () in
  let cache = Strudel.Render_cache.create () in
  let previous =
    Strudel.Site.build ~render_cache:cache ~data Sites.Cnn.definition
  in
  Strudel.Render_cache.reset_stats cache;
  let report = Strudel.Incremental.rebuild ~cache ~previous ~data () in
  check_int "every page reused" report.Strudel.Incremental.pages_total
    report.Strudel.Incremental.pages_reused;
  check_int "nothing re-rendered" 0
    report.Strudel.Incremental.pages_rerendered;
  let hits, _, invalidations = Strudel.Render_cache.stats cache in
  check_int "all hits" report.Strudel.Incremental.pages_total hits;
  check_int "no invalidations" 0 invalidations

let targeted_invalidation () =
  let data0 = Sites.Cnn.data ~articles:12 () in
  let cache = Strudel.Render_cache.create () in
  let previous =
    Strudel.Site.build ~render_cache:cache ~data:data0 Sites.Cnn.definition
  in
  Strudel.Render_cache.reset_stats cache;
  let data1 = Sites.Cnn.data ~articles:12 () in
  Test_end_to_end_props.apply_mutations data1 12
    [ Test_end_to_end_props.Set_headline (3, "Hedited") ];
  let report = Strudel.Incremental.rebuild ~cache ~previous ~data:data1 () in
  let _, _, invalidations = Strudel.Render_cache.stats cache in
  check_bool "some page invalidated" true (invalidations >= 1);
  check_bool "but not the whole site" true
    (report.Strudel.Incremental.pages_rerendered
    < report.Strudel.Incremental.pages_total);
  let full = Strudel.Site.build ~data:data1 Sites.Cnn.definition in
  check_bool "equals cold full build" true
    (page_map report.Strudel.Incremental.built.Strudel.Site.site
    = page_map full.Strudel.Site.site)

let template_change_clears () =
  let data = Sites.Cnn.data ~articles:8 () in
  let cache = Strudel.Render_cache.create () in
  let _ = Strudel.Site.build ~render_cache:cache ~data Sites.Cnn.definition in
  check_bool "cache populated" true (Strudel.Render_cache.size cache > 0);
  Strudel.Render_cache.reset_stats cache;
  (* same data, edited presentation: the traces can't see template text,
     so the fingerprint guard must drop every entry *)
  let ts = Sites.Cnn.definition.Strudel.Site.templates in
  let def2 =
    {
      Sites.Cnn.definition with
      Strudel.Site.templates =
        {
          ts with
          Template.Generator.by_collection =
            List.map
              (fun (c, text) -> (c, text ^ "\n<!-- v2 -->"))
              ts.Template.Generator.by_collection;
        };
    }
  in
  let b2 = Strudel.Site.build ~render_cache:cache ~data def2 in
  let hits, _, _ = Strudel.Render_cache.stats cache in
  check_int "no stale hit across template change" 0 hits;
  let cold = Strudel.Site.build ~data def2 in
  check_bool "rebuilt output equals cold build with new templates" true
    (page_map b2.Strudel.Site.site = page_map cold.Strudel.Site.site)

(* trace semantics at the Render_cache level: hit on an unchanged
   graph, invalidation exactly when an observed read changes *)
let find_valid_semantics () =
  let g = Graph.create ~name:"rc" () in
  let o = Graph.new_node g "obj" in
  Graph.add_edge g o "k" (Graph.V (Value.String "v1"));
  let cache = Strudel.Render_cache.create () in
  let r = Template.Generator.render_page_full ~trace_reads:true g o in
  Strudel.Render_cache.store cache r;
  (match Strudel.Render_cache.find_valid cache g o with
   | Some e ->
     check_bool "hit returns the rendered bytes" true
       (e.Strudel.Render_cache.e_html
       = r.Template.Generator.r_page.Template.Generator.html)
   | None -> Alcotest.fail "expected a hit on the unchanged graph");
  (* change an attribute the property sheet read *)
  Graph.remove_edge g o "k" (Graph.V (Value.String "v1"));
  Graph.add_edge g o "k" (Graph.V (Value.String "v2"));
  check_bool "edit invalidates" true
    (Strudel.Render_cache.find_valid cache g o = None);
  let hits, misses, invalidations = Strudel.Render_cache.stats cache in
  check_int "one hit" 1 hits;
  check_int "one invalidation" 1 invalidations;
  (* the stale entry was dropped: next lookup is a plain miss *)
  check_bool "stale entry removed" true
    (Strudel.Render_cache.find_valid cache g o = None);
  check_int "then a miss" (misses + 1)
    (let _, m, _ = Strudel.Render_cache.stats cache in
     m)

(* click-time sessions sit on the same cache: revisits hit, and a
   mutation of the partial graph re-renders exactly the touched page *)
let clicktime_hit_and_invalidation () =
  let data, _ = Ddl.parse ~graph_name:"ct" "object a in C { k 1 }\n" in
  let def =
    Strudel.Site.define ~name:"ct-site" ~root_family:"RootPage"
      [
        ( "site",
          {|WHERE C(x), x -> "k" -> v
            CREATE RootPage(), P(x)
            LINK RootPage() -> "item" -> P(x), P(x) -> "key" -> v
            COLLECT Pages(P(x))|} );
      ]
  in
  let ct = Strudel.Materialize.Click_time.start ~data def in
  let root = List.hd (Strudel.Materialize.Click_time.roots ct) in
  let h1 = Strudel.Materialize.Click_time.browse ct root in
  let h2 = Strudel.Materialize.Click_time.browse ct root in
  check_bool "revisit is byte-identical" true (h1 = h2);
  let st = Strudel.Materialize.Click_time.stats ct in
  check_int "revisit hit the cache" 1
    st.Strudel.Materialize.Click_time.cache_hits;
  (* no template: the render traced the root's out-edge list, so a new
     edge on the root must invalidate its page *)
  Graph.add_edge ct.Strudel.Materialize.Click_time.partial root "extra"
    (Graph.V (Value.String "late"));
  let h3 = Strudel.Materialize.Click_time.browse ct root in
  let st = Strudel.Materialize.Click_time.stats ct in
  check_int "mutation invalidated the page" 1
    st.Strudel.Materialize.Click_time.cache_invalidations;
  check_bool "re-render sees the new edge" true (h3 <> h2)

let muts_arb = Test_end_to_end_props.muts_arb

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "cache-assisted incremental rebuild equals cold full build \
            (random edit scripts)"
         ~count:20 muts_arb
         (cache_rebuild_equals_full ~jobs:1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "cache-assisted rebuild on 4 domains equals cold full build \
            (random edit scripts)"
         ~count:10 muts_arb
         (cache_rebuild_equals_full ~jobs:4));
    t "no-change rebuild hits on every page" no_change_all_hits;
    t "one edit invalidates only dependent pages" targeted_invalidation;
    t "template change clears the cache" template_change_clears;
    t "find_valid: hit, invalidation, removal" find_valid_semantics;
    t "click-time revisits hit; partial-graph edits invalidate"
      clicktime_hit_and_invalidation;
  ]
