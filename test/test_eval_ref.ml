(* An independent brute-force reference for the WHERE-stage semantics:
   enumerate all assignments of the query's free variables over the
   active domain and keep those satisfying every condition.  Negated
   variables that occur nowhere else are existential inside the [not]
   and checked by brute-force extension.  The planner-driven evaluator
   must agree exactly. *)

open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f

(* ---- the reference ---- *)

type rbind = R_obj of Graph.target | R_lab of string

let rbind_key = function
  | R_obj (Graph.N o) -> "N" ^ string_of_int (Oid.id o)
  | R_obj (Graph.V v) -> "V" ^ Value.to_string v
  | R_lab l -> "L" ^ l

(* variables and whether they occur in a label position *)
let rec cond_vars_kinds acc = function
  | Ast.C_atom (_, ts) -> List.fold_left term_vars_k acc ts
  | Ast.C_edge (x, l, y) ->
    let acc = term_vars_k (term_vars_k acc x) y in
    (match l with Ast.L_var v -> (v, `Lab) :: acc | Ast.L_const _ -> acc)
  | Ast.C_path (x, _, y) -> term_vars_k (term_vars_k acc x) y
  | Ast.C_cmp (_, a, b) -> term_vars_any (term_vars_any acc a) b
  | Ast.C_in (te, _) -> term_vars_any acc te
  | Ast.C_not c -> cond_vars_kinds acc c

and term_vars_k acc = function
  | Ast.T_var v -> (v, `Obj) :: acc
  | Ast.T_const _ -> acc
  | Ast.T_skolem _ | Ast.T_agg _ -> acc

(* comparison and membership operands are kind-neutral: they accept
   both labels and objects *)
and term_vars_any acc = function
  | Ast.T_var v -> (v, `Any) :: acc
  | Ast.T_const _ -> acc
  | Ast.T_skolem _ | Ast.T_agg _ -> acc

let positive_free_vars conds =
  Ast.dedup
    (List.concat_map
       (fun c ->
         match c with
         | Ast.C_not _ -> []
         | c -> List.map fst (cond_vars_kinds [] c))
       conds)

let term_val env = function
  | Ast.T_var v -> List.assoc_opt v env
  | Ast.T_const c -> Some (R_obj (Graph.V c))
  | Ast.T_skolem _ | Ast.T_agg _ -> None

let as_value = function
  | R_obj (Graph.V v) -> Some v
  | R_lab l -> Some (Value.String l)
  | R_obj (Graph.N _) -> None

(* satisfaction of one condition under a (possibly partial) assignment;
   unassigned variables in a negation are handled by extension *)
let rec satisfies g reg env (c : Ast.condition) : bool =
  match c with
  | Ast.C_atom (name, ts) ->
    if Builtins.is_extern reg name then
      let args =
        List.map
          (fun te ->
            match term_val env te with
            | Some (R_obj tg) -> tg
            | Some (R_lab l) -> Graph.V (Value.String l)
            | None -> Graph.V Value.Null)
          ts
      in
      (match Builtins.find_extern reg name with
       | Some f -> f g args
       | None -> false)
    else (
      match ts with
      | [ te ] -> (
          match term_val env te with
          | Some (R_obj (Graph.N o)) -> Graph.in_collection g name o
          | _ -> false)
      | _ -> false)
  | Ast.C_edge (x, l, y) -> (
      match term_val env x, term_val env y with
      | Some (R_obj (Graph.N o)), Some ytgt ->
        List.exists
          (fun (l', tgt) ->
            (match l with
             | Ast.L_const c -> l' = c
             | Ast.L_var v -> (
                 match List.assoc_opt v env with
                 | Some (R_lab lab) -> lab = l'
                 | _ -> false))
            &&
            (match ytgt with
             | R_obj yt -> (
                 Graph.target_equal tgt yt
                 ||
                 match tgt, yt with
                 | Graph.V a, Graph.V b -> Value.coerce_equal a b
                 | _ -> false)
             | R_lab lab -> (
                 match tgt with
                 | Graph.V v -> Value.coerce_equal v (Value.String lab)
                 | Graph.N _ -> false)))
          (Graph.out_edges g o)
      | _ -> false)
  | Ast.C_path (x, r, y) -> (
      match term_val env x, term_val env y with
      | Some (R_obj xt), Some (R_obj yt) ->
        (* use the fixpoint reference semantics, not the NFA *)
        List.exists
          (fun (a, b) -> Graph.target_equal a xt && Graph.target_equal b yt)
          (Path.eval_ref g r)
      | _ -> false)
  | Ast.C_cmp (op, a, b) -> (
      match term_val env a, term_val env b with
      | Some ra, Some rb -> (
          match ra, rb with
          | R_obj (Graph.N o1), R_obj (Graph.N o2) -> (
              match op with
              | Ast.Eq -> Oid.equal o1 o2
              | Ast.Ne -> not (Oid.equal o1 o2)
              | _ -> false)
          | _ -> (
              match as_value ra, as_value rb with
              | Some v1, Some v2 -> (
                  match op, Value.coerce_compare v1 v2 with
                  | Ast.Eq, Some 0 -> true
                  | Ast.Eq, _ -> false
                  | Ast.Ne, Some 0 -> false
                  | Ast.Ne, _ -> true
                  | Ast.Lt, Some c -> c < 0
                  | Ast.Le, Some c -> c <= 0
                  | Ast.Gt, Some c -> c > 0
                  | Ast.Ge, Some c -> c >= 0
                  | _, None -> false)
              | _ ->
                (* node vs value *)
                op = Ast.Ne))
      | _ -> false)
  | Ast.C_in (te, vs) -> (
      match term_val env te with
      | Some r -> (
          match as_value r with
          | Some v -> List.exists (Value.coerce_equal v) vs
          | None -> false)
      | None -> false)
  | Ast.C_not inner ->
    (* no extension of env over inner's unassigned vars satisfies it *)
    let inner_vars =
      Ast.dedup (List.map fst (cond_vars_kinds [] inner))
    in
    let unassigned =
      List.filter (fun v -> not (List.mem_assoc v env)) inner_vars
    in
    let kinds = cond_vars_kinds [] inner in
    let domain_for v =
      if List.mem (v, `Lab) kinds then
        List.map (fun l -> R_lab l) (Graph.labels g)
      else List.map (fun o -> R_obj o) (Path.all_objects g)
    in
    let rec exists_ext env = function
      | [] -> satisfies g reg env inner
      | v :: rest ->
        List.exists (fun b -> exists_ext ((v, b) :: env) rest) (domain_for v)
    in
    not (exists_ext env unassigned)

let reference_rows g reg conds =
  let kinds =
    List.concat_map
      (fun c -> match c with Ast.C_not _ -> [] | c -> cond_vars_kinds [] c)
      conds
  in
  let free = positive_free_vars conds in
  let domain_for v =
    if List.mem (v, `Lab) kinds then
      List.map (fun l -> R_lab l) (Graph.labels g)
    else List.map (fun o -> R_obj o) (Path.all_objects g)
  in
  let rec enum env = function
    | [] ->
      if List.for_all (satisfies g reg env) conds then [ env ] else []
    | v :: rest ->
      List.concat_map (fun b -> enum ((v, b) :: env) rest) (domain_for v)
  in
  enum [] free
  |> List.map (fun env ->
      List.sort compare (List.map (fun (v, b) -> (v, rbind_key b)) env))
  |> List.sort compare

let rows_via bindings g reg conds =
  let free = positive_free_vars conds in
  let kinds =
    List.concat_map
      (fun c -> match c with Ast.C_not _ -> [] | c -> cond_vars_kinds [] c)
      conds
  in
  let is_label v = List.mem (v, `Lab) kinds in
  bindings ~options:{ Eval.default_options with registry = reg } g conds
  |> List.map (fun env ->
      List.filter_map
        (fun v ->
          match Eval.Env.find_opt v env with
          (* an arc variable bound through an equality carries a string
             value; normalize it to its label form *)
          | Some (Eval.B_target (Graph.V (Value.String s))) when is_label v ->
            Some (v, rbind_key (R_lab s))
          | Some (Eval.B_target tg) -> Some (v, rbind_key (R_obj tg))
          | Some (Eval.B_label l) -> Some (v, rbind_key (R_lab l))
          | None -> None)
        free
      |> List.sort compare)
  |> List.sort_uniq compare

let planner_rows g reg conds =
  rows_via (fun ~options g conds -> Eval.bindings ~options g conds) g reg conds

(* the same relation through the streaming operator pipeline *)
let streaming_rows g reg conds =
  rows_via (fun ~options g conds -> Exec.bindings ~options g conds) g reg conds

(* ---- exact (order-sensitive) agreement between the two engines ---- *)

let binding_eq a b =
  match a, b with
  | Eval.B_target x, Eval.B_target y -> Graph.target_equal x y
  | Eval.B_label x, Eval.B_label y -> String.equal x y
  | _ -> false

let env_eq = Eval.Env.equal binding_eq

let envs_eq a b =
  List.length a = List.length b && List.for_all2 env_eq a b

(* ---- random inputs ---- *)

let data_gen =
  let open QCheck.Gen in
  let* n = int_range 1 5 in
  let* edges =
    list_size (int_range 0 10)
      (triple (int_bound (n - 1))
         (oneofl [ "a"; "b" ])
         (oneof
            [ map (fun i -> `I i) (int_bound 2);
              map (fun j -> `N j) (int_bound (n - 1)) ]))
  in
  let* members = list_size (int_range 0 n) (int_bound (n - 1)) in
  return (n, edges, members)

let build_data (n, edges, members) =
  let g = Graph.create ~name:"ref" () in
  let nodes = Array.init n (fun i -> Oid.fresh (Printf.sprintf "n%d" i)) in
  Array.iter (Graph.add_node g) nodes;
  List.iter
    (fun (a, l, tgt) ->
      match tgt with
      | `I v -> Graph.add_edge g nodes.(a) l (Graph.V (Value.Int v))
      | `N j -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(j)))
    edges;
  List.iter (fun i -> Graph.add_to_collection g "C" nodes.(i)) members;
  g

let cond_pool =
  [
    {|C(x)|};
    {|x -> "a" -> y|};
    {|x -> l -> y|};
    {|C(x), x -> "a" -> y|};
    {|C(x), x -> l -> v, v = 1|};
    {|x -> "a" -> y, y -> "b" -> z|};
    {|C(x), not(x -> "b" -> w)|};
    {|C(x), x -> "a" -> y, not(y -> "a" -> x)|};
    {|x -> "a"|"b" -> y|};
    {|C(x), x -> * -> y|};
    {|x -> "a" -> v, v in {0, 1}|};
    {|C(x), C(y), x != y|};
    {|x -> l -> v, l = "b"|};
    {|C(x), isAtomic(x)|};
    {|C(x), x -> "a" -> v, isInt(v)|};
  ]

let agree (spec, qi) =
  let g = build_data spec in
  let conds = Parser.parse_conditions (List.nth cond_pool qi) in
  let reg = Builtins.default in
  let reference = reference_rows g reg conds in
  reference = planner_rows g reg conds
  && reference = streaming_rows g reg conds

(* the streaming pipeline must produce not just the same relation but
   the same rows in the same order as the eager evaluator, under every
   strategy — the construction stage depends on it for oid fidelity *)
let exact_agree (spec, qi) =
  let g = build_data spec in
  let conds = Parser.parse_conditions (List.nth cond_pool qi) in
  List.for_all
    (fun strategy ->
      let options = { Eval.default_options with strategy } in
      envs_eq (Eval.bindings ~options g conds) (Exec.bindings ~options g conds))
    [ Plan.Naive; Plan.Heuristic; Plan.Cost_based ]

let suite =
  List.mapi
    (fun i src ->
      t (Printf.sprintf "fixed case %d: %s" i src) (fun () ->
          let g =
            build_data
              (4, [ (0, "a", `N 1); (1, "b", `N 2); (0, "a", `I 1);
                    (2, "a", `I 0); (3, "b", `N 0) ],
               [ 0; 2; 3 ])
          in
          let conds = Parser.parse_conditions src in
          let reg = Builtins.default in
          Alcotest.(check bool)
            "reference = planner" true
            (reference_rows g reg conds = planner_rows g reg conds)))
    cond_pool
  @ [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:"planner evaluation matches brute-force reference"
           ~count:300
           (QCheck.make
              ~print:(fun (_, qi) -> List.nth cond_pool qi)
              QCheck.Gen.(pair data_gen (int_bound (List.length cond_pool - 1))))
           agree);
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:
             "streaming engine matches eager engine row-for-row (all \
              strategies)"
           ~count:300
           (QCheck.make
              ~print:(fun (_, qi) -> List.nth cond_pool qi)
              QCheck.Gen.(pair data_gen (int_bound (List.length cond_pool - 1))))
           exact_agree);
    ]
