(* Differential suite for the compiled graph kernel: path evaluation on
   a frozen CSR snapshot must be indistinguishable — order included —
   from the interpretive BFS on the live graph, which is itself pinned
   to the fixpoint reference semantics.  Also pins snapshot
   invalidation, the attribute fast paths, the backward candidate lane,
   and byte-identity of full site builds with the kernel on and off at
   several job counts. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_kernel flag f =
  let saved = !Path.kernel_enabled in
  Path.kernel_enabled := flag;
  Fun.protect ~finally:(fun () -> Path.kernel_enabled := saved) f

(* RPE generator with a named predicate so the dispatch tables'
   fallback lane is exercised, not just exact labels and Any *)
let rpe_gen =
  let open QCheck.Gen in
  let pred =
    oneofl
      [
        Path.Label "x";
        Path.Label "y";
        Path.Label "z";
        Path.Any;
        Path.Named_pred ("notZ", fun l -> l <> "z");
      ]
  in
  let rec gen depth =
    if depth = 0 then map (fun p -> Path.Edge p) pred
    else
      frequency
        [
          (3, map (fun p -> Path.Edge p) pred);
          (1, return Path.Epsilon);
          (2, map2 (fun a b -> Path.Seq (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> Path.Alt (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (1, map (fun a -> Path.Star a) (gen (depth - 1)));
          (1, map (fun a -> Path.Plus a) (gen (depth - 1)));
          (1, map (fun a -> Path.Opt a) (gen (depth - 1)));
        ]
  in
  gen 3

let graph_gen =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let* edges =
    list_size (int_range 0 16)
      (triple (int_bound (n - 1)) (oneofl [ "x"; "y"; "z" ]) (int_bound (n - 1)))
  in
  let* vals =
    list_size (int_range 0 4) (pair (int_bound (n - 1)) (int_bound 2))
  in
  return (n, edges, vals)

let build_graph (n, edges, vals) =
  let g = Graph.create ~name:"k" () in
  let nodes = Array.init n (fun i -> Oid.fresh (string_of_int i)) in
  Array.iter (Graph.add_node g) nodes;
  List.iter (fun (a, l, b) -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(b))) edges;
  List.iter
    (fun (a, v) -> Graph.add_edge g nodes.(a) "z" (Graph.V (Value.Int v)))
    vals;
  (g, nodes)

let target_key = function
  | Graph.N o -> "N" ^ Oid.name o
  | Graph.V v -> "V" ^ Value.to_string v

let gen_case =
  QCheck.make
    ~print:(fun (_, r) -> Fmt.str "%a" Path.pp r)
    QCheck.Gen.(pair graph_gen rpe_gen)

(* exact equality, order included: the kernel's whole contract *)
let kernel_identical_to_legacy (spec, rpe) =
  let g, nodes = build_graph spec in
  let legacy =
    with_kernel false (fun () ->
        Array.to_list nodes
        |> List.map (fun o -> List.map target_key (Path.eval_from g rpe o)))
  in
  ignore (Graph.freeze g);
  let kernel =
    with_kernel true (fun () ->
        Array.to_list nodes
        |> List.map (fun o -> List.map target_key (Path.eval_from g rpe o)))
  in
  legacy = kernel

let kernel_matches_reference (spec, rpe) =
  let g, nodes = build_graph spec in
  ignore (Graph.freeze g);
  let ref_pairs =
    Path.eval_ref g rpe
    |> List.filter_map (fun (x, y) ->
        match x with
        | Graph.N o -> Some (Oid.name o, target_key y)
        | Graph.V _ -> None)
    |> List.sort_uniq compare
  in
  let kernel_pairs =
    with_kernel true (fun () ->
        Array.to_list nodes
        |> List.concat_map (fun o ->
            List.map (fun t -> (Oid.name o, target_key t)) (Path.eval_from g rpe o))
        |> List.sort_uniq compare)
  in
  ref_pairs = kernel_pairs

(* the backward lane: a complete candidate set, in Graph.nodes order,
   that filters down to exactly the true sources *)
let candidates_complete_and_ordered (spec, rpe) =
  let g, nodes = build_graph spec in
  ignore (Graph.freeze g);
  with_kernel true (fun () ->
      let all_targets =
        Array.to_list nodes |> List.concat_map (fun o -> Path.eval_from g rpe o)
      in
      let probes =
        List.map (fun t ->
            ( t,
              match t with
              | Graph.N o -> Path.Pnode o
              | Graph.V v -> Path.Pvalue v ))
          all_targets
      in
      List.for_all
        (fun (tgt, probe) ->
          match Path.candidate_sources g rpe ~towards:probe with
          | None -> false (* snapshot is live: the lane must engage *)
          | Some cands ->
            let exact =
              Array.to_list nodes
              |> List.filter (fun o ->
                  List.exists (Graph.target_equal tgt) (Path.eval_from g rpe o))
            in
            let cand_names = List.map Oid.name cands in
            let node_order =
              List.filter
                (fun n -> List.mem n cand_names)
                (List.map Oid.name (Graph.nodes g))
            in
            (* complete ... *)
            List.for_all (fun o -> List.mem (Oid.name o) cand_names) exact
            (* ... and emitted in Graph.nodes order *)
            && cand_names = node_order)
        probes)

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"frozen kernel results identical (order included) to legacy BFS"
         ~count:400 gen_case kernel_identical_to_legacy);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frozen kernel matches reference semantics"
         ~count:300 gen_case kernel_matches_reference);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"candidate_sources is complete and in node order" ~count:200
         gen_case candidates_complete_and_ordered);
  ]

(* --- snapshot lifecycle --- *)

let mk () =
  let g = Graph.create ~name:"snap" () in
  let a = Graph.new_node g "a" in
  let b = Graph.new_node g "b" in
  let c = Graph.new_node g "c" in
  Graph.add_edge g a "x" (Graph.N b);
  Graph.add_edge g b "y" (Graph.N c);
  Graph.add_edge g a "v" (Graph.V (Value.Int 7));
  (g, a, b, c)

let lifecycle =
  [
    t "freeze caches until mutation" (fun () ->
        let g, a, b, _ = mk () in
        check_bool "no snapshot before freeze" true (Graph.snapshot g = None);
        let s1 = Graph.freeze g in
        let s2 = Graph.freeze g in
        check_bool "cached" true (s1 == s2);
        check_bool "snapshot visible" true (Graph.snapshot g <> None);
        Graph.add_edge g b "x" (Graph.N a);
        check_bool "mutation invalidates" true (Graph.snapshot g = None);
        let s3 = Graph.freeze g in
        check_bool "refreeze rebuilds" true (not (s1 == s3)));
    t "add_node and remove_edge invalidate" (fun () ->
        let g, a, b, _ = mk () in
        ignore (Graph.freeze g);
        ignore (Graph.new_node g "d");
        check_bool "add_node" true (Graph.snapshot g = None);
        ignore (Graph.freeze g);
        Graph.remove_edge g a "x" (Graph.N b);
        check_bool "remove_edge" true (Graph.snapshot g = None));
    t "attr fast paths agree with live scans" (fun () ->
        let g, a, _, _ = mk () in
        let live_attr = Graph.attr g a "x" in
        let live_attr1 = Graph.attr1 g a "x" in
        let live_v = Graph.attr_value g a "v" in
        ignore (Graph.freeze g);
        check_bool "attr" true (Graph.attr g a "x" = live_attr);
        check_bool "attr1" true (Graph.attr1 g a "x" = live_attr1);
        check_bool "attr_value" true (Graph.attr_value g a "v" = live_v);
        check_bool "unknown label" true (Graph.attr g a "nope" = []));
    t "memo counters: misses then hits" (fun () ->
        let g, a, _, _ = mk () in
        ignore (Graph.freeze g);
        with_kernel true (fun () ->
            let r = Path.any_path in
            (* memoization is per compiled automaton: share the nfa, as
               plans do, so the second call is a memo hit *)
            let nfa = Path.compile r in
            let before = Graph.kernel_counters g in
            ignore (Path.eval_from ~nfa g r a);
            ignore (Path.eval_from ~nfa g r a);
            let after = Graph.kernel_counters g in
            check_bool "a miss happened" true
              (after.Graph.misses > before.Graph.misses);
            check_bool "a hit happened" true
              (after.Graph.hits > before.Graph.hits)));
    t "eval_from on a node foreign to the graph still answers" (fun () ->
        let g, _, _, _ = mk () in
        ignore (Graph.freeze g);
        let stranger = Oid.fresh "stranger" in
        with_kernel true (fun () ->
            check_int "nullable self only" 1
              (List.length (Path.eval_from g Path.any_path stranger))));
  ]

(* --- Obag: the indexed buckets under label/value/in indexes --- *)

let obag =
  [
    t "insertion order survives keyed removal" (fun () ->
        let b = Obag.create () in
        List.iter (fun i -> Obag.add b i (string_of_int i)) [ 1; 2; 3; 4; 5 ];
        Obag.remove b 3;
        Obag.remove b 1;
        Obag.remove b 5;
        check_bool "order" true (Obag.to_list b = [ "2"; "4" ]);
        check_int "length" 2 (Obag.length b);
        Obag.remove b 42 (* absent: no-op *);
        check_int "still 2" 2 (Obag.length b);
        Obag.add b 1 "1'";
        check_bool "re-add appends" true (Obag.to_list b = [ "2"; "4"; "1'" ]));
    t "duplicate key rejected" (fun () ->
        let b = Obag.create () in
        Obag.add b "k" 0;
        check_bool "raises" true
          (try
             Obag.add b "k" 1;
             false
           with Invalid_argument _ -> true));
  ]

(* --- full site builds: kernel on ≡ kernel off, at jobs ∈ {1, 4} --- *)

let page_triples (site : Template.Generator.site) =
  List.map
    (fun (p : Template.Generator.page) ->
      ( p.Template.Generator.url,
        Oid.name p.Template.Generator.obj,
        p.Template.Generator.html ))
    site.Template.Generator.pages

let sites_under_test () =
  [
    ("paper", Sites.Paper_example.definition, Sites.Paper_example.data ());
    ("cnn", Sites.Cnn.definition, Sites.Cnn.data ~articles:15 ());
    ( "org",
      Sites.Org.definition,
      let _, w = Sites.Org.data ~people:15 ~orgs:3 () in
      Mediator.Warehouse.graph w );
  ]

let site_tests =
  List.map
    (fun (name, def, data) ->
      t (Printf.sprintf "%s: kernel on/off builds byte-identical" name)
        (fun () ->
          let off =
            with_kernel false (fun () ->
                page_triples (Strudel.Site.build ~data def).Strudel.Site.site)
          in
          check_bool (name ^ " has pages") true (off <> []);
          List.iter
            (fun jobs ->
              let on =
                with_kernel true (fun () ->
                    page_triples
                      (Strudel.Site.build ~jobs ~data def).Strudel.Site.site)
              in
              check_bool
                (Printf.sprintf "%s jobs=%d identical" name jobs)
                true (on = off))
            [ 1; 4 ]))
    (sites_under_test ())

(* kernel counters surface in the execution profile *)
let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let profile_tests =
  [
    t "explain-analyze reports freeze and memo counts" (fun () ->
        let g = Graph.create ~name:"prof" () in
        let a = Graph.new_node g "a" in
        let b = Graph.new_node g "b" in
        Graph.add_to_collection g "R" a;
        Graph.add_to_collection g "R" b;
        Graph.add_edge g a "next" (Graph.N b);
        Graph.add_edge g b "next" (Graph.N a);
        let q =
          Struql.Parser.parse
            {|WHERE R(t), t -> "next"+ -> u COLLECT Out(t) OUTPUT o|}
        in
        let _, prof = Struql.Exec.run_with_profile g q in
        check_int "one freeze" 1 prof.Struql.Exec.prf_kernel_freezes;
        check_bool "kernel ran" true
          (prof.Struql.Exec.prf_kernel_misses > 0);
        let s = Fmt.str "%a" Struql.Exec.pp_profile prof in
        check_bool "kernel line printed" true (contains_sub s "kernel:"));
  ]

let suite = props @ lifecycle @ obag @ site_tests @ profile_tests
