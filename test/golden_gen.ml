(* Golden-snapshot generator: prints every rendered page of one example
   site to stdout as "==== <url> ====" blocks.  The dune rules diff the
   output against the committed snapshots under test/golden/; template
   regressions show as reviewable diffs and intentional changes are
   accepted with `dune runtest --auto-promote`.  Sites are built at
   small, seeded sizes so the snapshots stay diffable. *)

let dump (built : Strudel.Site.built) =
  List.iter
    (fun (p : Template.Generator.page) ->
      Printf.printf "==== %s ====\n%s\n" p.Template.Generator.url
        p.Template.Generator.html)
    built.Strudel.Site.site.Template.Generator.pages

(* lint-<site>: the text-format lint report of the site at the same
   small, seeded sizes — the expected-warning baselines of the example
   specifications. *)
let lint spec = print_string (Analysis.Diagnostic.to_text (Analysis.Lint.run spec))

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "" with
  | "paper" -> dump (Sites.Paper_example.build ())
  | "cnn" -> dump (Sites.Cnn.build ~articles:6 ())
  | "org" -> dump (Sites.Org.build ~people:8 ~orgs:2 ~projects:3 ~pubs:4 ())
  | "homepage" -> dump (Sites.Homepage.build ~entries:5 ())
  | "rodin" -> dump (Sites.Rodin.build ())
  | "lint-paper" -> lint (Sites.Lint_specs.paper ())
  | "lint-cnn" -> lint (Sites.Lint_specs.cnn ())
  | "lint-org" -> lint (Sites.Lint_specs.org ())
  | "lint-homepage" -> lint (Sites.Lint_specs.homepage ())
  | "lint-rodin" -> lint (Sites.Lint_specs.rodin ())
  (* lint-shard: the paper spec against a deliberately stale shard
     manifest (its only shard is home to a collection the queries never
     read), the SA050 baseline. *)
  | "lint-shard" ->
    lint
      {
        (Sites.Lint_specs.paper ()) with
        Analysis.Lint.shard_manifest =
          Some [ ("Archive", [ "TechReports" ]) ];
      }
  | other ->
    prerr_endline
      ("usage: golden_gen (lint-)?(paper|cnn|org|homepage|rodin|shard) — \
        got: " ^ other);
    exit 1
