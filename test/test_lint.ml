(* The static analyzer: one positive and one negative case per
   diagnostic code, expected-finding baselines for the bundled example
   sites, renderer sanity for all three output formats, and a qcheck
   soundness property tying SA041 to render-time attribute reads. *)

open Sgraph
module L = Analysis.Lint
module D = Analysis.Diagnostic

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

let empty_tpl = Template.Generator.empty_templates

let mk ?data ?(templates = empty_tpl) ?(root = "Root") ?(constraints = [])
    ?(declared = []) ?(mappings = []) ?shards ?(max_guide = 10_000) queries =
  {
    L.name = "test";
    queries;
    templates;
    root_family = root;
    constraints;
    registry = Struql.Builtins.default;
    data;
    declared_sources = declared;
    mapping_sources = mappings;
    shard_manifest = shards;
    max_guide_states = max_guide;
  }

let codes ds = List.map (fun d -> d.D.code) ds
let has c ds = List.mem c (codes ds)
let diag c ds = List.find_opt (fun d -> d.D.code = c) ds

(* A clean two-family specification used as the negative baseline. *)
let q_ok =
  {|INPUT DATA
{ CREATE Root()
  COLLECT Roots(Root()) }
{ WHERE Items(x)
  CREATE P(x)
  LINK Root() -> "Item" -> P(x), P(x) -> "Self" -> x
  COLLECT Ps(P(x)) }
OUTPUT SITE|}

let tpl_ok =
  {
    empty_tpl with
    Template.Generator.by_collection =
      [ ("Roots", "<html>root</html>"); ("Ps", "<p><SFMT @Self></p>") ];
  }

let spec_ok ?data ?constraints () = mk ?data ?constraints ~templates:tpl_ok
    [ ("site", q_ok) ]

(* Small data graph: [n] Items, each carrying every attribute in
   [attrs] with the value "V<attr>". *)
let items_graph ?(n = 2) attrs =
  let g = Graph.create ~name:"DATA" () in
  for i = 1 to n do
    let o = Graph.new_node g (Printf.sprintf "item%d" i) in
    Graph.add_to_collection g "Items" o;
    List.iter
      (fun a -> Graph.add_edge g o a (Graph.V (Value.String ("V" ^ a))))
      attrs
  done;
  g

let plumbing_tests =
  [
    t "clean spec yields no diagnostics" (fun () ->
        check_int "count" 0 (List.length (L.run (spec_ok ()))));
    t "SA001: unparsable query" (fun () ->
        let ds = L.run (mk [ ("q", "WHERE (") ]) in
        check_bool "has" true (has "SA001" ds);
        match diag "SA001" ds with
        | Some { D.span = Some { D.file = "q"; l1; _ }; _ } ->
          check_bool "line set" true (l1 >= 1)
        | _ -> Alcotest.fail "expected a span on query q");
    t "SA002: link from an existing object, with span" (fun () ->
        let q = {|INPUT D
{ WHERE Items(x)
  LINK x -> "a" -> x }
OUTPUT S|} in
        let ds = L.run (mk [ ("q", q) ]) in
        check_bool "has" true (has "SA002" ds);
        match diag "SA002" ds with
        | Some { D.span = Some { D.l1 = 3; _ }; _ } -> ()
        | Some { D.span; _ } ->
          Alcotest.failf "wrong span: %s"
            (match span with
             | Some s -> Printf.sprintf "%d:%d" s.D.l1 s.D.c1
             | None -> "none")
        | None -> Alcotest.fail "missing");
    t "SA003: active-domain variable" (fun () ->
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ CREATE P(y)
  LINK Root() -> "P" -> P(y)
  COLLECT Ps(P(y)) }
OUTPUT S|} in
        let ds = L.run (mk ~templates:tpl_ok [ ("site", q) ]) in
        check_bool "has" true (has "SA003" ds));
    t "SA004: unparsable template" (fun () ->
        let templates =
          {
            tpl_ok with
            Template.Generator.by_collection =
              ("Bad", "<SIF @x><SELSE>") :: tpl_ok.Template.Generator.by_collection;
          }
        in
        let ds = L.run (mk ~templates [ ("site", q_ok) ]) in
        check_bool "has" true (has "SA004" ds));
    t "SA005: undeclared mapping source" (fun () ->
        let ds =
          L.run
            (mk ~templates:tpl_ok ~declared:[ "a" ] ~mappings:[ "a"; "zzz" ]
               [ ("site", q_ok) ])
        in
        check_bool "has" true (has "SA005" ds);
        (match diag "SA005" ds with
         | Some d -> check_bool "names it" true (contains d.D.message "zzz")
         | None -> Alcotest.fail "missing");
        let clean =
          L.run
            (mk ~templates:tpl_ok ~declared:[ "a" ] ~mappings:[ "a"; "*" ]
               [ ("site", q_ok) ])
        in
        check_bool "star ok" false (has "SA005" clean));
    t "SA050: shard-manifest coverage" (fun () ->
        (* Items is home to no shard: flagged, and the message names the
           collection and the manifest's shards. *)
        let ds =
          L.run
            (mk ~templates:tpl_ok
               ~shards:[ ("archive", [ "TechReports" ]) ]
               [ ("site", q_ok) ])
        in
        check_bool "has" true (has "SA050" ds);
        (match diag "SA050" ds with
         | Some d ->
           check_bool "names collection" true (contains d.D.message "Items");
           check_bool "names shard" true (contains d.D.message "archive")
         | None -> Alcotest.fail "missing");
        (* covered collection: clean *)
        let clean =
          L.run
            (mk ~templates:tpl_ok
               ~shards:[ ("items", [ "Items" ]) ]
               [ ("site", q_ok) ])
        in
        check_bool "covered ok" false (has "SA050" clean);
        (* no manifest: analysis off *)
        let off = L.run (mk ~templates:tpl_ok [ ("site", q_ok) ]) in
        check_bool "off" false (has "SA050" off));
  ]

(* --- path emptiness --- *)

let q_path path =
  Printf.sprintf
    {|INPUT DATA
{ CREATE Root()
  COLLECT Roots(Root()) }
{ WHERE Items(x), x -> %s -> y
  CREATE P(x)
  LINK Root() -> "Item" -> P(x), P(x) -> "Val" -> y
  COLLECT Ps(P(x)) }
OUTPUT SITE|}
    path

let path_tests =
  [
    t "SA010: impossible path expression" (fun () ->
        let g = items_graph [ "a" ] in
        let ds =
          L.run
            (mk ~data:g ~templates:tpl_ok
               [ ("site", q_path {|"nope"."deep"|}) ])
        in
        check_bool "has" true (has "SA010" ds);
        match diag "SA010" ds with
        | Some { D.span = Some { D.file = "site"; l1 = 4; _ }; _ } -> ()
        | _ -> Alcotest.fail "expected span on line 4 of site");
    t "SA010 negative: satisfiable path" (fun () ->
        let g = Graph.create ~name:"DATA" () in
        let o = Graph.new_node g "item1" in
        let o2 = Graph.new_node g "item2" in
        Graph.add_to_collection g "Items" o;
        Graph.add_edge g o "a" (Graph.N o2);
        Graph.add_edge g o2 "a" (Graph.V (Value.String "deep"));
        let ds =
          L.run
            (mk ~data:g ~templates:tpl_ok [ ("site", q_path {|"a"."a"|}) ])
        in
        check_bool "no SA010" false (has "SA010" ds));
    t "SA011: edge label absent from the data" (fun () ->
        let g = items_graph [ "a" ] in
        let bad =
          L.run (mk ~data:g ~templates:tpl_ok [ ("site", q_path {|"nope"|}) ])
        in
        check_bool "has" true (has "SA011" bad);
        let ok =
          L.run (mk ~data:g ~templates:tpl_ok [ ("site", q_path {|"a"|}) ])
        in
        check_bool "clean" false (has "SA011" ok));
    t "SA012: absent and empty collections" (fun () ->
        let g = Graph.create ~name:"DATA" () in
        let ds = L.run (mk ~data:g ~templates:tpl_ok [ ("site", q_ok) ]) in
        (match diag "SA012" ds with
         | Some d -> check_bool "absent" true (contains d.D.message "absent")
         | None -> Alcotest.fail "expected SA012");
        let o = Graph.new_node g "x" in
        Graph.add_to_collection g "Items" o;
        Graph.remove_from_collection g "Items" o;
        let ds = L.run (mk ~data:g ~templates:tpl_ok [ ("site", q_ok) ]) in
        (match diag "SA012" ds with
         | Some d -> check_bool "empty" true (contains d.D.message "empty")
         | None -> Alcotest.fail "expected SA012");
        let g = items_graph [ "a" ] in
        let ds = L.run (mk ~data:g ~templates:tpl_ok [ ("site", q_ok) ]) in
        check_bool "clean" false (has "SA012" ds));
    t "SA013: DataGuide bound degrades the analysis" (fun () ->
        let g = items_graph [ "a" ] in
        let ds =
          L.run
            (mk ~data:g ~templates:tpl_ok ~max_guide:1
               [ ("site", q_path {|"nope"."deep"|}) ])
        in
        check_bool "has SA013" true (has "SA013" ds);
        check_bool "no SA010" false (has "SA010" ds));
  ]

(* --- dead / unused specification --- *)

let dead_tests =
  [
    t "SA020: variable bound but never used" (fun () ->
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(x), x -> "a" -> dead
  CREATE P(x)
  LINK Root() -> "Item" -> P(x)
  COLLECT Ps(P(x)) }
OUTPUT S|} in
        let ds = L.run (mk ~templates:tpl_ok [ ("site", q) ]) in
        (match diag "SA020" ds with
         | Some d -> check_bool "names dead" true (contains d.D.message "dead")
         | None -> Alcotest.fail "expected SA020"));
    t "SA020 negative: underscore silences" (fun () ->
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(x), x -> "a" -> _dead
  CREATE P(x)
  LINK Root() -> "Item" -> P(x)
  COLLECT Ps(P(x)) }
OUTPUT S|} in
        check_bool "clean" false
          (has "SA020" (L.run (mk ~templates:tpl_ok [ ("site", q) ]))));
    t "SA020 negative: nested filter on an outer variable" (fun () ->
        (* [l = "year"] filters the outer l, it does not bind a fresh
           variable — the paper-example regression *)
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(x), x -> l -> v
  CREATE P(x)
  LINK Root() -> "Item" -> P(x), P(x) -> l -> v
  COLLECT Ps(P(x))
  { WHERE l = "year"
    CREATE Y(v)
    LINK Root() -> "Year" -> Y(v), Y(v) -> "Of" -> P(x)
    COLLECT Ys(Y(v)) } }
OUTPUT S|} in
        check_bool "clean" false
          (has "SA020" (L.run (mk ~templates:tpl_ok [ ("site", q) ]))));
    t "SA021: collected but never used" (fun () ->
        let q = {|INPUT D
{ CREATE Root()
  COLLECT Roots(Root()), Ghosts(Root()) }
OUTPUT S|} in
        let ds = L.run (mk ~templates:tpl_ok [ ("site", q) ]) in
        (match diag "SA021" ds with
         | Some d ->
           check_bool "names Ghosts" true (contains d.D.message "Ghosts")
         | None -> Alcotest.fail "expected SA021");
        check_bool "templated collection not flagged" false
          (List.exists
             (fun d -> d.D.code = "SA021" && contains d.D.message "Roots")
             ds));
    t "SA022: family unreachable from the root" (fun () ->
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(x)
  CREATE Orphan(x)
  LINK Orphan(x) -> "Self" -> x
  COLLECT Ps(Orphan(x)) }
OUTPUT S|} in
        let ds = L.run (mk ~templates:tpl_ok [ ("site", q) ]) in
        (match diag "SA022" ds with
         | Some d ->
           check_bool "names Orphan" true (contains d.D.message "Orphan")
         | None -> Alcotest.fail "expected SA022");
        check_bool "linked family not flagged" false
          (has "SA022" (L.run (spec_ok ()))));
    t "SA023: duplicate link clause" (fun () ->
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(x)
  CREATE P(x)
  LINK Root() -> "Item" -> P(x), Root() -> "Item" -> P(x)
  COLLECT Ps(P(x)) }
OUTPUT S|} in
        check_bool "has" true
          (has "SA023" (L.run (mk ~templates:tpl_ok [ ("site", q) ]))));
    t "SA024: root family never created" (fun () ->
        let ds =
          L.run (mk ~root:"Missing" ~templates:tpl_ok [ ("site", q_ok) ])
        in
        (match diag "SA024" ds with
         | Some d ->
           check_bool "error" true (d.D.severity = D.Error);
           check_bool "names it" true (contains d.D.message "Missing")
         | None -> Alcotest.fail "expected SA024"));
  ]

(* --- constraints --- *)

let constraint_tests =
  [
    t "SA030: always-violated No_edge, with witnesses" (fun () ->
        let ds =
          L.run
            (spec_ok ~constraints:[ Schema.Verify.No_edge ("Root", "Item") ] ())
        in
        match diag "SA030" ds with
        | Some d ->
          check_bool "error" true (d.D.severity = D.Error);
          check_bool "witnesses" true (d.D.related <> []);
          check_bool "span" true (d.D.span <> None)
        | None -> Alcotest.fail "expected SA030");
    t "SA031: statically undecidable Points_to" (fun () ->
        let ds =
          L.run
            (spec_ok
               ~constraints:[ Schema.Verify.Points_to ("Root", "Item", "P") ]
               ())
        in
        match diag "SA031" ds with
        | Some d -> check_bool "info" true (d.D.severity = D.Info)
        | None -> Alcotest.fail "expected SA031");
    t "constraints that hold stay silent" (fun () ->
        let ds =
          L.run
            (spec_ok ~constraints:[ Schema.Verify.No_edge ("Root", "Nope") ] ())
        in
        check_bool "no SA030" false (has "SA030" ds);
        check_bool "no SA031" false (has "SA031" ds));
  ]

(* --- templates --- *)

let template_tests =
  [
    t "SA040: template bound to a never-collected collection" (fun () ->
        let templates =
          {
            tpl_ok with
            Template.Generator.by_collection =
              ("Nope", "<html>x</html>")
              :: tpl_ok.Template.Generator.by_collection;
          }
        in
        check_bool "has" true
          (has "SA040" (L.run (mk ~templates [ ("site", q_ok) ]))));
    t "SA041: impossible attribute reference, with span" (fun () ->
        let templates =
          {
            empty_tpl with
            Template.Generator.by_collection =
              [
                ("Roots", "<html>root</html>");
                ("Ps", "<p>\n<SFMT @Missing></p>");
              ];
          }
        in
        let ds = L.run (mk ~templates [ ("site", q_ok) ]) in
        match diag "SA041" ds with
        | Some d ->
          check_bool "names it" true (contains d.D.message "Missing");
          (match d.D.span with
           | Some s ->
             check_int "line" 2 s.D.l1;
             check_bool "template file" true
               (contains s.D.file "template:collection:Ps")
           | None -> Alcotest.fail "expected a span")
        | None -> Alcotest.fail "expected SA041");
    t "SA041 negative: possible attribute, and wildcard labels" (fun () ->
        check_bool "possible attr clean" false
          (has "SA041" (L.run (spec_ok ())));
        (* a variable-labelled link makes any attribute possible *)
        let q = {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(x), x -> l -> v
  CREATE P(x)
  LINK Root() -> "Item" -> P(x), P(x) -> l -> v
  COLLECT Ps(P(x)) }
OUTPUT S|} in
        let templates =
          {
            empty_tpl with
            Template.Generator.by_collection =
              [ ("Roots", "<html>r</html>"); ("Ps", "<SFMT @Anything>") ];
          }
        in
        check_bool "wildcard clean" false
          (has "SA041" (L.run (mk ~templates [ ("site", q) ]))));
    t "SA042: constant link to a missing named template" (fun () ->
        let q = {|INPUT D
{ CREATE Root()
  LINK Root() -> "HTML-template" -> "nope"
  COLLECT Roots(Root()) }
OUTPUT S|} in
        let ds = L.run (mk ~templates:tpl_ok [ ("site", q) ]) in
        (match diag "SA042" ds with
         | Some d ->
           check_bool "names it" true (contains d.D.message "nope");
           check_bool "span" true (d.D.span <> None)
         | None -> Alcotest.fail "expected SA042");
        let templates =
          {
            tpl_ok with
            Template.Generator.named = [ ("nope", "<html>n</html>") ];
          }
        in
        let ds = L.run (mk ~templates [ ("site", q) ]) in
        check_bool "resolves" false (has "SA042" ds));
    t "SA042: object template for a never-created family" (fun () ->
        let templates =
          {
            tpl_ok with
            Template.Generator.by_object = [ ("Zed()", "<html>z</html>") ];
          }
        in
        check_bool "has" true
          (has "SA042" (L.run (mk ~templates [ ("site", q_ok) ]))));
    t "SA043: named template never selected by a constant link" (fun () ->
        let templates =
          {
            tpl_ok with
            Template.Generator.named = [ ("extra", "<b>e</b>") ];
          }
        in
        let ds = L.run (mk ~templates [ ("site", q_ok) ]) in
        match diag "SA043" ds with
        | Some d -> check_bool "info" true (d.D.severity = D.Info)
        | None -> Alcotest.fail "expected SA043");
  ]

(* --- example-site baselines --- *)

let baseline_tests =
  [
    t "all bundled sites lint without errors" (fun () ->
        List.iter
          (fun (name, mk) ->
            let ds = L.run (mk ()) in
            match D.max_severity ds with
            | Some D.Error ->
              Alcotest.failf "%s has lint errors:\n%s" name (D.to_text ds)
            | _ -> ())
          Sites.Lint_specs.by_name);
    t "cnn baseline: dead variable s2" (fun () ->
        let ds = L.run (Sites.Lint_specs.cnn ()) in
        match diag "SA020" ds with
        | Some d -> check_bool "s2" true (contains d.D.message "s2")
        | None -> Alcotest.fail "expected the known SA020");
    t "org baseline: LegacyPages collected but unused" (fun () ->
        let ds = L.run (Sites.Lint_specs.org ()) in
        check_bool "has" true
          (List.exists
             (fun d ->
               d.D.code = "SA021" && contains d.D.message "LegacyPages")
             ds));
    t "paper baseline is warning-free" (fun () ->
        let ds = L.run (Sites.Lint_specs.paper ()) in
        check_bool "no warnings" true
          (match D.max_severity ds with
           | None | Some D.Info -> true
           | _ -> false));
  ]

(* --- renderers and gating --- *)

let seeded_diags () =
  (* one spec that produces SA010 (impossible path), SA030 (violated
     No_edge) and SA042 (broken template reference), each with a span *)
  let q = {|INPUT DATA
{ CREATE Root()
  LINK Root() -> "HTML-template" -> "ghost"
  COLLECT Roots(Root()) }
{ WHERE Items(x), x -> "nope"."deep" -> y
  CREATE P(x)
  LINK Root() -> "Item" -> P(x), P(x) -> "Val" -> y
  COLLECT Ps(P(x)) }
OUTPUT SITE|} in
  L.run
    (mk
       ~data:(items_graph [ "a" ])
       ~templates:tpl_ok
       ~constraints:[ Schema.Verify.No_edge ("Root", "Item") ]
       [ ("site", q) ])

let format_tests =
  [
    t "seeded diagnostics appear with spans in all three formats" (fun () ->
        let ds = seeded_diags () in
        List.iter
          (fun c -> check_bool (c ^ " present") true (has c ds))
          [ "SA010"; "SA030"; "SA042" ];
        let text = D.to_text ds in
        check_bool "text span" true (contains text "site:5:");
        check_bool "text code" true (contains text "error SA010");
        let json = D.to_json ds in
        check_bool "json code" true (contains json {|"code":"SA010"|});
        check_bool "json span" true (contains json {|"startLine":5|});
        check_bool "json summary" true (contains json {|"summary"|});
        let sarif = D.to_sarif ds in
        check_bool "sarif rule" true (contains sarif {|"ruleId":"SA010"|});
        check_bool "sarif schema" true (contains sarif "sarif-2.1.0");
        check_bool "sarif location" true (contains sarif "physicalLocation");
        check_bool "sarif catalog" true (contains sarif {|"id":"SA043"|}));
    t "exit codes follow --fail-on" (fun () ->
        let warn = [ D.make ~code:"SA020" D.Warning "w" ] in
        let err = [ D.make ~code:"SA024" D.Error "e" ] in
        check_int "warning under fail-error" 0 (L.exit_code L.Fail_error warn);
        check_int "warning under fail-warning" 1
          (L.exit_code L.Fail_warning warn);
        check_int "error under fail-error" 1 (L.exit_code L.Fail_error err);
        check_int "clean" 0 (L.exit_code L.Fail_warning []));
    t "fail_on_of_string" (fun () ->
        check_bool "error" true (L.fail_on_of_string "error" = Some L.Fail_error);
        check_bool "warning" true
          (L.fail_on_of_string "warning" = Some L.Fail_warning);
        check_bool "junk" true (L.fail_on_of_string "junk" = None));
  ]

(* --- qcheck: SA041 agrees with render-time attribute reads --- *)

let pool = [ "alpha"; "beta"; "gamma"; "delta" ]

let attr_prop (mask, ti, n) =
  let s = List.filteri (fun i _ -> List.nth mask i) pool in
  let chosen = List.nth pool ti in
  let copy a =
    Printf.sprintf "  { WHERE x -> \"%s\" -> v%s LINK P(x) -> \"C%s\" -> v%s }\n"
      a a a a
  in
  let q =
    "INPUT DATA\n{ CREATE Root()\n  COLLECT Roots(Root()) }\n\
     { WHERE Items(x)\n  CREATE P(x)\n  LINK Root() -> \"Item\" -> P(x)\n\
     \  COLLECT Ps(P(x))\n"
    ^ String.concat "" (List.map copy s)
    ^ "}\nOUTPUT SITE\n"
  in
  let templates =
    {
      empty_tpl with
      Template.Generator.by_collection =
        [
          (* the root must link the items or their pages are never
             realized by the generator *)
          ("Roots", "<ul><SFMTLIST @Item></ul>");
          ("Ps", Printf.sprintf "<p><SFMT @C%s></p>" chosen);
        ];
    }
  in
  let g = items_graph ~n pool in
  let def =
    Strudel.Site.define ~name:"QSITE" ~root_family:"Root" ~templates
      [ ("site", q) ]
  in
  let flagged = has "SA041" (L.run (L.of_definition ~data:g def)) in
  let built = Strudel.Site.build ~data:g def in
  let sentinel = "V" ^ chosen in
  let hits =
    List.length
      (List.filter
         (fun (p : Template.Generator.page) ->
           contains p.Template.Generator.html sentinel)
         built.Strudel.Site.site.Template.Generator.pages)
  in
  (* flagged ⇔ the attribute cannot be read on any page; clean ⇔ the
     read succeeds on every one of the n item pages *)
  if flagged then hits = 0 else hits = n

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"SA041-clean specs never miss an attribute at render time"
         ~count:40
         (QCheck.make
            QCheck.Gen.(
              triple
                (list_repeat 4 bool)
                (int_bound 3)
                (int_range 1 3)))
         attr_prop);
  ]

let suite =
  plumbing_tests @ path_tests @ dead_tests @ constraint_tests @ template_tests
  @ baseline_tests @ format_tests @ qcheck_tests
