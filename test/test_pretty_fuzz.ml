(* Printer/parser agreement over randomly generated query ASTs — the
   corpus round-trips in test_struql_parser cover the example sites;
   this covers the grammar space. *)

open Sgraph
open Struql

let var_pool = [| "x"; "y"; "z"; "v"; "w" |]
let label_var_pool = [| "l"; "m" |]
let coll_pool = [| "C"; "D"; "Items" |]
let fn_pool = [| "F"; "G"; "Page" |]
let label_pool = [| "a"; "b"; "year"; "Weird Label" |]

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-20) 20);
        map (fun s -> Value.String s)
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
        return (Value.Bool true);
        return Value.Null;
      ])

let gen_where_term =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun v -> Ast.T_var v) (oneofa var_pool));
        (1, map (fun c -> Ast.T_const c) gen_value);
      ])

let gen_label_term =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Ast.L_var v) (oneofa label_var_pool);
        map (fun l -> Ast.L_const l) (oneofa label_pool);
      ])

let gen_rpe =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun l -> Path.Edge (Path.Label l)) (oneofa label_pool);
        return (Path.Edge Path.Any);
        return
          (Path.Edge
             (Path.Named_pred
                ( "isName",
                  Option.get (Builtins.find_label_pred Builtins.default "isName")
                )));
      ]
  in
  let rec gen d =
    if d = 0 then atom
    else
      frequency
        [
          (3, atom);
          (1, map2 (fun a b -> Path.Seq (a, b)) (gen (d - 1)) (gen (d - 1)));
          (1, map2 (fun a b -> Path.Alt (a, b)) (gen (d - 1)) (gen (d - 1)));
          (1, map (fun a -> Path.Star a) (gen (d - 1)));
          (1, map (fun a -> Path.Plus a) (gen (d - 1)));
          (1, map (fun a -> Path.Opt a) (gen (d - 1)));
        ]
  in
  gen 2

(* A path condition whose expression is one literal label prints
   exactly like a single-edge condition (the parser always reads that
   form as C_edge), so normalize it to the canonical AST. *)
let rec normalize_cond = function
  | Ast.C_path (x, Path.Edge (Path.Label l), y) ->
    Ast.C_edge (x, Ast.L_const l, y)
  | Ast.C_not c -> Ast.C_not (normalize_cond c)
  | c -> c

let gen_condition =
  let open QCheck.Gen in
  let rec gen d =
    frequency
      ([
         (2, map2 (fun c t -> Ast.C_atom (c, [ t ])) (oneofa coll_pool)
               gen_where_term);
         (3,
          map3 (fun x l y -> Ast.C_edge (x, l, y)) gen_where_term
            gen_label_term gen_where_term);
         (2,
          map3 (fun x r y -> Ast.C_path (x, r, y)) gen_where_term gen_rpe
            gen_where_term);
         (2,
          map3 (fun op a b -> Ast.C_cmp (op, a, b))
            (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ])
            gen_where_term gen_where_term);
         (1,
          map2 (fun t vs -> Ast.C_in (t, vs)) gen_where_term
            (list_size (int_range 1 3) gen_value));
       ]
      @ if d > 0 then [ (1, map (fun c -> Ast.C_not c) (gen (d - 1))) ] else [])
  in
  QCheck.Gen.map normalize_cond (gen 1)

let gen_cons_term =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun v -> Ast.T_var v) (oneofa var_pool));
        (1, map (fun c -> Ast.T_const c) gen_value);
      ])

let gen_skolem =
  QCheck.Gen.(
    map2
      (fun f args -> (f, args))
      (oneofa fn_pool)
      (list_size (int_range 0 2) gen_cons_term))

let gen_link created =
  QCheck.Gen.(
    let* f, args = oneofl created in
    let* l = gen_label_term in
    let* target =
      frequency
        [
          (2, gen_cons_term);
          (1, map (fun (g, a) -> Ast.T_skolem (g, a)) (oneofl created));
          (1,
           map2 (fun fn t -> Ast.T_agg (fn, t))
             (oneofl [ Ast.Count; Ast.Sum; Ast.Min; Ast.Max; Ast.Avg ])
             gen_cons_term);
        ]
    in
    return (Ast.T_skolem (f, args), l, target))

let gen_block =
  let open QCheck.Gen in
  let rec gen depth =
    let* where = list_size (int_range 0 3) gen_condition in
    let* created = list_size (int_range 1 2) gen_skolem in
    let* link = list_size (int_range 0 3) (gen_link created) in
    let* collect =
      list_size (int_range 0 2)
        (map2
           (fun c (f, args) -> (c, Ast.T_skolem (f, args)))
           (oneofa [| "Out"; "Pages" |])
           (oneofl created))
    in
    let* nested =
      if depth = 0 then return []
      else list_size (int_range 0 2) (gen (depth - 1))
    in
    return { Ast.where; create = created; link; collect; nested }
  in
  gen 1

let gen_query =
  QCheck.Gen.(
    let* blocks = list_size (int_range 1 3) gen_block in
    return { Ast.input = [ "IN" ]; blocks; output = "OUT" })

let arb_query =
  QCheck.make ~print:(fun q -> Pretty.to_string q) gen_query

(* Evaluation enumerates the active domain for every variable the
   conditions leave unbound — including CREATE/LINK/COLLECT variables,
   which the planner backs with Domain_obj/Domain_label enumerators —
   so a block whose (conjoined) scope holds k distinct variables can
   cost |domain|^k; skip the rare random queries where that blow-up
   would stall (or OOM) the suite.  Counting only WHERE variables here
   is not enough: a block with no conditions but several construction
   variables enumerates the full domain product all the same. *)
let rec cond_vars acc = function
  | Ast.C_atom (_, ts) -> List.fold_left term_vars acc ts
  | Ast.C_edge (x, l, y) ->
    let acc = term_vars (term_vars acc x) y in
    (match l with Ast.L_var v -> v :: acc | Ast.L_const _ -> acc)
  | Ast.C_path (x, _, y) -> term_vars (term_vars acc x) y
  | Ast.C_cmp (_, a, b) -> term_vars (term_vars acc a) b
  | Ast.C_in (t, _) -> term_vars acc t
  | Ast.C_not c -> cond_vars acc c

and term_vars acc = function
  | Ast.T_var v -> v :: acc
  | Ast.T_const _ -> acc
  | Ast.T_skolem (_, args) -> List.fold_left term_vars acc args
  | Ast.T_agg (_, t) -> term_vars acc t

let construction_vars acc (b : Ast.block) =
  let acc =
    List.fold_left
      (fun acc (_, args) -> List.fold_left term_vars acc args)
      acc b.Ast.create
  in
  let acc =
    List.fold_left
      (fun acc (src, l, tgt) ->
        let acc = term_vars (term_vars acc src) tgt in
        match l with Ast.L_var v -> v :: acc | Ast.L_const _ -> acc)
      acc b.Ast.link
  in
  List.fold_left (fun acc (_, t) -> term_vars acc t) acc b.Ast.collect

let rec widest_scope inherited (b : Ast.block) =
  let scope =
    Ast.dedup
      (construction_vars
         (List.fold_left cond_vars inherited b.Ast.where)
         b)
  in
  List.fold_left
    (fun m nb -> max m (widest_scope scope nb))
    (List.length scope) b.Ast.nested

let tractable (q : Ast.query) =
  List.for_all (fun b -> widest_scope [] b <= 3) q.Ast.blocks

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pretty/parse fixpoint on random ASTs"
         ~count:500 arb_query (fun q ->
           let printed = Pretty.to_string q in
           let q' = Parser.parse printed in
           Pretty.query_equal q q' && Pretty.to_string q' = printed));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"random queries evaluate identically under all strategies"
         ~count:150 arb_query (fun q ->
           (* evaluation needs validity; random links always originate at
              created skolems so checks can only fail on arity clashes *)
           if not (tractable q) then true (* skip intractable *)
           else
           match Check.check q with
           | { errors = _ :: _; _ } -> true (* skip invalid *)
           | _ ->
             let data = Wrappers.Synth.news_graph ~articles:6 () in
             (* give the query something to match: rename collections *)
             let census strategy =
               let out =
                 Eval.run
                   ~options:{ Eval.default_options with strategy }
                   data q
               in
               ( Graph.node_count out,
                 Graph.edge_count out,
                 List.sort compare
                   (List.map
                      (fun l -> (l, Graph.label_count out l))
                      (Graph.labels out)) )
             in
             census Plan.Naive = census Plan.Heuristic
             && census Plan.Heuristic = census Plan.Cost_based));
  ]
