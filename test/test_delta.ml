(* Delta-StruQL: the differential engine (Struql.Dexec), the delta
   refresh (Warehouse.refresh_delta) and the watch loop (Serve.Watch)
   maintain a published site byte-identically to a cold full build —
   property-tested under random edit scripts, including
   collection-emptying removals, at jobs 1 and 4; plus units for the
   kill switch, the fallback taxonomy, and quarantine under seeded
   source failures. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let page_map (site : Template.Generator.site) =
  List.map
    (fun (p : Template.Generator.page) ->
      (Oid.name p.Template.Generator.obj, p.Template.Generator.html))
    site.Template.Generator.pages
  |> List.sort compare

(* --- a small delta-friendly site: driving collection + nested
   attribute copy, same shape as the scale site --- *)

let site_query =
  {|INPUT DATA
{ CREATE Root()
  COLLECT Roots(Root()) }
{ WHERE Items(i), i -> "grp" -> g
  CREATE GroupPage(g), ItemPage(i)
  LINK GroupPage(g) -> "Name" -> g,
       GroupPage(g) -> "Item" -> ItemPage(i),
       ItemPage(i) -> "Group" -> GroupPage(g),
       Root() -> "Group" -> GroupPage(g)
  COLLECT GroupPages(GroupPage(g)), ItemPages(ItemPage(i))
  { WHERE i -> l -> v
    LINK ItemPage(i) -> l -> v }
}
OUTPUT SITE
|}

let templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("Roots", {|<h1>Index</h1>
<SFMTLIST @Group ORDER=ascend KEY=Name>
|});
        ("GroupPages", {|<h1><SFMT @Name></h1>
<SFMTLIST @Item ORDER=ascend KEY=title>
|});
        ( "ItemPages",
          {|<h1><SFMT @title></h1>
<SIF @body != NULL><p><SFMT @body></p></SIF>
<SIF @tag != NULL><p><i><SFMT @tag></i></p></SIF>
<p><SFMT @Group LINK="Up"></p>
|} );
      ];
    named = [];
  }

let definition =
  Strudel.Site.define ~name:"DELTASITE" ~root_family:"Root" ~templates
    [ ("site", site_query) ]

let add_item_raw add_node add_edge add_coll i =
  let it = Oid.fresh (Printf.sprintf "item%d" i) in
  add_node it;
  add_edge it "title" (Graph.V (Value.String (Printf.sprintf "Item %03d" i)));
  add_edge it "grp" (Graph.V (Value.String (Printf.sprintf "G%d" (i mod 3))));
  add_coll "Items" it;
  it

let mk_data n =
  let g = Graph.create ~name:"DATA" () in
  for i = 1 to n do
    ignore
      (add_item_raw (Graph.add_node g)
         (fun o l v -> Graph.add_edge g o l v)
         (fun c o -> Graph.add_to_collection g c o)
         i)
  done;
  g

(* --- random edit scripts, applied through the watch recorder --- *)

type op =
  | Add of int
  | Remove of int
  | Retitle of int * string
  | Tag of int * string
  | Move_group of int * int
  | Drop_member of int
  | Empty_collection

let op_gen =
  let open QCheck.Gen in
  frequency
    [
      (3, map (fun i -> Add i) (int_bound 999));
      (3, map (fun i -> Remove i) (int_bound 99));
      (3, map2 (fun i s -> Retitle (i, "T" ^ s)) (int_bound 99)
           (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)));
      (2, map2 (fun i s -> Tag (i, s)) (int_bound 99)
           (oneofl [ "new"; "hot"; "old" ]));
      (2, map2 (fun i j -> Move_group (i, j)) (int_bound 99) (int_bound 3));
      (2, map (fun i -> Drop_member i) (int_bound 99));
      (1, return Empty_collection);
    ]

let nth_member g i =
  match Graph.collection g "Items" with
  | [] -> None
  | ms -> Some (List.nth ms (i mod List.length ms))

let apply_op r nextid op =
  let g = Delta.Rec.graph r in
  match op with
  | Add _ ->
    incr nextid;
    ignore
      (add_item_raw (Delta.Rec.add_node r) (Delta.Rec.add_edge r)
         (Delta.Rec.add_to_collection r)
         (100 + !nextid))
  | Remove i -> (
    match nth_member g i with
    | Some o -> Delta.Rec.remove_node r o
    | None -> ())
  | Retitle (i, s) -> (
    match nth_member g i with
    | Some o -> Delta.Rec.set_value r o "title" (Value.String s)
    | None -> ())
  | Tag (i, s) -> (
    match nth_member g i with
    | Some o -> Delta.Rec.add_edge r o "tag" (Graph.V (Value.String s))
    | None -> ())
  | Move_group (i, j) -> (
    match nth_member g i with
    | Some o ->
      Delta.Rec.set_value r o "grp" (Value.String (Printf.sprintf "G%d" j))
    | None -> ())
  | Drop_member i -> (
    match nth_member g i with
    | Some o -> Delta.Rec.remove_from_collection r "Items" o
    | None -> ())
  | Empty_collection ->
    List.iter
      (fun o -> Delta.Rec.remove_from_collection r "Items" o)
      (Graph.collection g "Items")

(* One watch session over [items] items, the edit script applied
   through the recorder, one delta cycle — published pages must equal a
   cold Site.build over the same mutated data. *)
let delta_equals_cold ~jobs ops =
  let g = mk_data 30 in
  let w = Serve.Watch.create ~jobs ~source:(Serve.Watch.Direct g) definition in
  let r = Option.get (Serve.Watch.recorder w) in
  let nextid = ref 0 in
  List.iter (apply_op r nextid) ops;
  let _report = Serve.Watch.cycle w in
  let cold = Strudel.Site.build ~data:g definition in
  page_map (Serve.Watch.built w).Strudel.Site.site
  = page_map cold.Strudel.Site.site

let ops_arb = QCheck.make QCheck.Gen.(list_size (int_range 1 10) op_gen)

(* --- units --- *)

let parse = Struql.Parser.parse

let classes_of queries data =
  let dx = Struql.Dexec.create ~queries:(List.map parse queries) data in
  Struql.Dexec.prime dx;
  (dx, Struql.Dexec.classes dx)

let has_fallback classes =
  List.exists
    (fun (_, c) -> String.length c >= 8 && String.sub c 0 8 = "fallback")
    classes

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"delta publish equals cold build (random edits, jobs=1)"
         ~count:20 ops_arb (delta_equals_cold ~jobs:1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"delta publish equals cold build (random edits, jobs=4)"
         ~count:8 ops_arb (delta_equals_cold ~jobs:4));
    t "clean cycle publishes nothing" (fun () ->
        let g = mk_data 12 in
        let w =
          Serve.Watch.create ~source:(Serve.Watch.Direct g) definition
        in
        let r = Serve.Watch.cycle w in
        check_bool "unchanged" false r.Serve.Watch.cy_changed;
        check_int "no rerenders" 0 r.Serve.Watch.cy_rerendered);
    t "one-item edit re-renders only its neighbourhood" (fun () ->
        let g = mk_data 60 in
        let w =
          Serve.Watch.create ~source:(Serve.Watch.Direct g) definition
        in
        let r = Option.get (Serve.Watch.recorder w) in
        let o = Option.get (nth_member g 7) in
        Delta.Rec.set_value r o "title" (Value.String "Renamed");
        let rep = Serve.Watch.cycle w in
        check_bool "changed" true rep.Serve.Watch.cy_changed;
        check_bool "few pages re-rendered" true
          (rep.Serve.Watch.cy_rerendered * 4
           < rep.Serve.Watch.cy_rerendered + rep.Serve.Watch.cy_reused);
        check_bool "most pages reused" true (rep.Serve.Watch.cy_reused > 50);
        let cold = Strudel.Site.build ~data:g definition in
        check_bool "byte-identical" true
          (page_map (Serve.Watch.built w).Strudel.Site.site
           = page_map cold.Strudel.Site.site));
    t "kill switch: full re-derive stays byte-identical" (fun () ->
        Fun.protect
          ~finally:(fun () -> Struql.Exec.delta_enabled := true)
          (fun () ->
            Struql.Exec.delta_enabled := false;
            check_bool "identical with delta disabled" true
              (delta_equals_cold ~jobs:1
                 [ Add 1; Remove 3; Retitle (2, "Tx"); Empty_collection;
                   Add 2 ])));
    t "counters advance across cycles" (fun () ->
        let g = mk_data 20 in
        let w =
          Serve.Watch.create ~source:(Serve.Watch.Direct g) definition
        in
        let r = Option.get (Serve.Watch.recorder w) in
        let o = Option.get (nth_member g 3) in
        Delta.Rec.set_value r o "title" (Value.String "X");
        ignore (Serve.Watch.cycle w);
        let c = Struql.Dexec.counters (Serve.Watch.engine w) in
        check_bool "cycles counted" true (c.Struql.Dexec.c_cycles >= 1);
        check_bool "drivers counted" true (c.Struql.Dexec.c_drivers >= 1);
        check_bool "rows counted" true (c.Struql.Dexec.c_rows >= 1));
    (* --- fallback taxonomy --- *)
    t "aggregates classify as fallback" (fun () ->
        let dx, classes =
          classes_of
            [
              {|WHERE Items(i), i -> "grp" -> g
                CREATE Y(g) LINK Y(g) -> "n" -> count(i)
                COLLECT Ys(Y(g)) OUTPUT o|};
            ]
            (mk_data 6)
        in
        check_bool "fallback" true (has_fallback classes);
        check_bool "reason recorded" true (Struql.Dexec.fallbacks dx <> []));
    t "negation classifies as fallback" (fun () ->
        let _, classes =
          classes_of
            [
              {|WHERE Items(i), not(i -> "tag" -> "old")
                CREATE P(i) COLLECT Ps(P(i)) OUTPUT o|};
            ]
            (mk_data 6)
        in
        check_bool "fallback" true (has_fallback classes));
    t "non-derived data read classifies as fallback" (fun () ->
        (* x is bound by a comparison with a literal, not derived from
           the driver: reads from x escape delta invalidation and the
           block must replay in full *)
        let _, classes =
          classes_of
            [
              {|WHERE Items(i), i -> "title" -> t, t = "Item 001",
                      Items(j), j -> "grp" -> h
                CREATE Q(h) COLLECT Qs(Q(h)) OUTPUT o|};
            ]
            (mk_data 6)
        in
        check_bool "fallback" true (has_fallback classes));
    t "driving-collection scan classifies as driven" (fun () ->
        let _, classes =
          classes_of [ site_query ] (mk_data 6)
        in
        check_bool "some block driven" true
          (List.exists
             (fun (_, c) ->
               String.length c >= 6 && String.sub c 0 6 = "driven")
             classes));
    (* --- mediated mode --- *)
    t "warehouse refresh_delta: None when clean, rebased when stale"
      (fun () ->
        let src =
          Mediator.Source.make ~name:"s" (fun () ->
              let g = Graph.create ~name:"S" () in
              let a = Oid.fresh "a" in
              Graph.add_node g a;
              Graph.add_edge g a "title" (Graph.V (Value.String "A"));
              Graph.add_to_collection g "Items" a;
              g)
        in
        let copy =
          Mediator.Gav.mapping_of_string ~source:"s"
            {|WHERE Items(x), x -> l -> v, isAtomic(v)
              CREATE It(x) LINK It(x) -> l -> v
              COLLECT Items(It(x)) OUTPUT mediated|}
        in
        let w =
          Mediator.Warehouse.create ~sources:[ src ] ~mappings:[ copy ] ()
        in
        check_bool "clean -> None" true
          (Mediator.Warehouse.refresh_delta w = None);
        let before =
          Option.get (Graph.find_node (Mediator.Warehouse.graph w) "It(a)")
        in
        Mediator.Source.update src (fun () ->
            let g = Graph.create ~name:"S" () in
            let a = Oid.fresh "a" and b = Oid.fresh "b" in
            Graph.add_node g a;
            Graph.add_node g b;
            Graph.add_edge g a "title" (Graph.V (Value.String "A"));
            Graph.add_edge g b "title" (Graph.V (Value.String "B"));
            Graph.add_to_collection g "Items" a;
            Graph.add_to_collection g "Items" b;
            g);
        (match Mediator.Warehouse.refresh_delta w with
         | None -> Alcotest.fail "stale warehouse returned no delta"
         | Some d ->
           check_bool "delta not empty" false (Delta.is_empty d));
        let after =
          Option.get (Graph.find_node (Mediator.Warehouse.graph w) "It(a)")
        in
        check_bool "surviving node keeps its oid (rebase)" true
          (Oid.equal before after));
    t "mediated org watch: delta cycle equals cold build" (fun () ->
        let sources, w =
          Sites.Org.data ~people:24 ~orgs:4 ~projects:6 ~pubs:8 ()
        in
        let session =
          Serve.Watch.create ~source:(Serve.Watch.Mediated w)
            Sites.Org.definition
        in
        let r0 = Serve.Watch.cycle session in
        check_bool "initially clean" false r0.Serve.Watch.cy_changed;
        Mediator.Source.update sources.Sites.Org.bib (fun () ->
            fst
              (Wrappers.Bibtex.load ~graph_name:"BIB"
                 (Wrappers.Synth.bibtex ~seed:99 ~entries:10 ())));
        let r1 = Serve.Watch.cycle session in
        check_bool "changed" true r1.Serve.Watch.cy_changed;
        let cold =
          Strudel.Site.build
            ~data:(Mediator.Warehouse.graph w)
            Sites.Org.definition
        in
        check_bool "byte-identical to cold build" true
          (page_map (Serve.Watch.built session).Strudel.Site.site
           = page_map cold.Strudel.Site.site));
    t "watch survives a quarantined source and reports it" (fun () ->
        let fault = Fault.ctx () in
        let flaky_down = ref false in
        let mk_graph () =
          let g = Graph.create ~name:"S" () in
          List.iter
            (fun n ->
              let o = Oid.fresh n in
              Graph.add_node g o;
              Graph.add_edge g o "title" (Graph.V (Value.String n));
              Graph.add_edge g o "grp" (Graph.V (Value.String "G0"));
              Graph.add_to_collection g "Items" o)
            [ "i1"; "i2"; "i3" ];
          g
        in
        let src =
          Mediator.Source.make
            ~policy:(Fault.Policy.skip_source ~retry:Fault.Policy.no_retry ())
            ~name:"flaky"
            (fun () ->
              if !flaky_down then failwith "socket timeout" else mk_graph ())
        in
        let copy =
          Mediator.Gav.mapping_of_string ~source:"flaky"
            {|WHERE Items(x), x -> l -> v, isAtomic(v)
              CREATE It(x) LINK It(x) -> l -> v
              COLLECT Items(It(x)) OUTPUT mediated|}
        in
        let w =
          Mediator.Warehouse.create ~fault ~sources:[ src ] ~mappings:[ copy ]
            ()
        in
        let definition =
          Strudel.Site.define ~name:"FLAKYSITE" ~root_family:"Root"
            ~templates
            [
              ( "site",
                {|INPUT MEDIATED
{ CREATE Root() COLLECT Roots(Root()) }
{ WHERE Items(i), i -> "grp" -> g
  CREATE GroupPage(g), ItemPage(i)
  LINK GroupPage(g) -> "Name" -> g,
       GroupPage(g) -> "Item" -> ItemPage(i),
       ItemPage(i) -> "Group" -> GroupPage(g),
       Root() -> "Group" -> GroupPage(g)
  COLLECT GroupPages(GroupPage(g)), ItemPages(ItemPage(i))
  { WHERE i -> l -> v LINK ItemPage(i) -> l -> v } }
OUTPUT SITE|} );
            ]
        in
        let session =
          Serve.Watch.create ~fault ~source:(Serve.Watch.Mediated w)
            definition
        in
        let pages_before =
          List.length
            (Serve.Watch.built session).Strudel.Site.site
              .Template.Generator.pages
        in
        check_bool "cold build has item pages" true (pages_before > 3);
        flaky_down := true;
        Mediator.Source.update src (fun () ->
            failwith "update loader must not run");
        let r = Serve.Watch.cycle session in
        check_bool "quarantine reported" true
          (List.exists (fun (s, _) -> s = "flaky") r.Serve.Watch.cy_quarantined);
        (* the skip policy drops the source's data for this integration;
           the published site must match a cold build of whatever the
           warehouse now serves -- degraded, never wedged *)
        let cold =
          Strudel.Site.build ~data:(Mediator.Warehouse.graph w) definition
        in
        check_bool "still byte-identical under quarantine" true
          (page_map (Serve.Watch.built session).Strudel.Site.site
           = page_map cold.Strudel.Site.site));
    t "watch loop honours max_cycles and exit codes" (fun () ->
        let g = mk_data 5 in
        let w =
          Serve.Watch.create ~source:(Serve.Watch.Direct g) definition
        in
        let seen = ref 0 in
        let code =
          Serve.Watch.watch ~interval:0.0 ~max_cycles:3
            ~on_cycle:(fun _ _ -> incr seen)
            w
        in
        check_int "three cycles ran" 3 !seen;
        check_int "clean exit" 0 code);
  ]
