(* Differential suite for the parallel render pool: builds at jobs ∈
   {2,4,8} must be byte-identical to the sequential reference path —
   same page URLs, same bytes, same Skolem page identities, in the same
   order — on every example site and under randomized mutations of the
   data graph.  Also pins the slug-collision fallback. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let job_levels = [ 2; 4; 8 ]

(* (url, skolem name, html) per page, in generator order: comparing the
   full triple list checks byte-identity AND identical page identities
   AND identical discovery order at once *)
let page_triples (site : Template.Generator.site) =
  List.map
    (fun (p : Template.Generator.page) ->
      ( p.Template.Generator.url,
        Oid.name p.Template.Generator.obj,
        p.Template.Generator.html ))
    site.Template.Generator.pages

let sites_under_test () =
  [
    ("paper", Sites.Paper_example.definition, Sites.Paper_example.data ());
    ("cnn", Sites.Cnn.definition, Sites.Cnn.data ~articles:20 ());
    ( "org",
      Sites.Org.definition,
      let _, w = Sites.Org.data ~people:20 ~orgs:3 () in
      Mediator.Warehouse.graph w );
    ("homepage", Sites.Homepage.definition, Sites.Homepage.data ~entries:12 ());
    ("rodin", Sites.Rodin.definition, Sites.Rodin.data ~extra_projects:2 ());
  ]

let example_site_tests =
  List.map
    (fun (name, def, data) ->
      t
        (Printf.sprintf "%s: parallel builds byte-identical to sequential"
           name)
        (fun () ->
          let reference = Strudel.Site.build ~data def in
          let seq_pages = page_triples reference.Strudel.Site.site in
          check_bool (name ^ " has pages") true (seq_pages <> []);
          List.iter
            (fun jobs ->
              let b = Strudel.Site.build ~jobs ~data def in
              let prof = b.Strudel.Site.render_profile in
              check_int
                (Printf.sprintf "%s jobs=%d profile jobs" name jobs)
                jobs prof.Strudel.Render_pool.rp_jobs;
              check_bool
                (Printf.sprintf "%s jobs=%d no fallback" name jobs)
                false prof.Strudel.Render_pool.rp_fallback;
              check_bool
                (Printf.sprintf "%s jobs=%d pages identical" name jobs)
                true
                (page_triples b.Strudel.Site.site = seq_pages))
            job_levels))
    (sites_under_test ())

(* randomized inputs: the site queries run over randomly mutated data
   graphs; the parallel build must track the sequential one on each *)
let parallel_equals_sequential_random muts =
  let data = Sites.Cnn.data ~articles:Test_end_to_end_props.articles () in
  Test_end_to_end_props.apply_mutations data Test_end_to_end_props.articles
    muts;
  let reference = Strudel.Site.build ~data Sites.Cnn.definition in
  List.for_all
    (fun jobs ->
      let b = Strudel.Site.build ~jobs ~data Sites.Cnn.definition in
      page_triples b.Strudel.Site.site
      = page_triples reference.Strudel.Site.site)
    job_levels

(* scheduler correctness under fault injection: an injector's fail
   decisions are a pure hash of (seed, point) — jobs-independent — so a
   degraded work-stealing build must equal the degraded jobs=1 wave
   build page-for-page (placeholders included), report-for-report (the
   manifest), and count-for-count *)
let degraded_parallel_equals_sequential (muts, seed) =
  let data = Sites.Cnn.data ~articles:Test_end_to_end_props.articles () in
  Test_end_to_end_props.apply_mutations data Test_end_to_end_props.articles
    muts;
  let run jobs =
    let inject = Fault.Inject.create ~seed ~p_render:0.12 () in
    let fault = Fault.ctx ~inject () in
    let b =
      Strudel.Site.build ~jobs ~on_error:Fault.Degrade ~fault ~data
        Sites.Cnn.definition
    in
    ( page_triples b.Strudel.Site.site,
      b.Strudel.Site.faults,
      b.Strudel.Site.render_profile.Strudel.Render_pool.rp_degraded )
  in
  let reference = run 1 in
  List.for_all (fun jobs -> run jobs = reference) job_levels

(* cache-warm runs: a cache seeded by the sequential build must serve
   parallel rebuilds verbatim — batched prefetch + worker-side trace
   verification change the schedule, never the bytes *)
let warm_cache_parallel_equals_sequential muts =
  let data = Sites.Cnn.data ~articles:Test_end_to_end_props.articles () in
  Test_end_to_end_props.apply_mutations data Test_end_to_end_props.articles
    muts;
  let cache = Strudel.Render_cache.create () in
  let reference =
    Strudel.Site.build ~render_cache:cache ~data Sites.Cnn.definition
  in
  let seq_pages = page_triples reference.Strudel.Site.site in
  List.for_all
    (fun jobs ->
      Strudel.Render_cache.reset_stats cache;
      let b =
        Strudel.Site.build ~jobs ~render_cache:cache ~data
          Sites.Cnn.definition
      in
      let hits, misses, _ = Strudel.Render_cache.stats cache in
      page_triples b.Strudel.Site.site = seq_pages
      && misses = 0
      && hits = List.length seq_pages)
    job_levels

(* two distinct page objects sharing a name share a slug; only the
   sequential generator's discovery-ordered uniquification produces the
   reference URLs, so the pool must detect the collision and fall back *)
let collision_fallback () =
  let g = Graph.create ~name:"collide" () in
  let root = Graph.new_node g "root" in
  let d1 = Graph.new_node g "dup" in
  let d2 = Graph.new_node g "dup" in
  Graph.add_edge g root "first" (Graph.N d1);
  Graph.add_edge g root "second" (Graph.N d2);
  Graph.add_edge g d1 "kind" (Graph.V (Value.String "one"));
  Graph.add_edge g d2 "kind" (Graph.V (Value.String "two"));
  let reference = Template.Generator.generate g ~roots:[ root ] in
  let site, prof = Strudel.Render_pool.materialize ~jobs:4 g ~roots:[ root ] in
  check_bool "fallback detected" true prof.Strudel.Render_pool.rp_fallback;
  check_bool "pages equal sequential" true
    (page_triples site = page_triples reference);
  (* the reference really does uniquify: three pages, distinct URLs *)
  check_int "three pages" 3 (Template.Generator.page_count reference);
  let urls =
    List.map (fun (u, _, _) -> u) (page_triples reference)
    |> List.sort_uniq compare
  in
  check_int "distinct urls" 3 (List.length urls)

(* profile sanity on the wave path: every rendered page is attributed
   to exactly one shard, and shard page counts sum to the total *)
let profile_accounts_pages () =
  let data = Sites.Cnn.data ~articles:20 () in
  let b = Strudel.Site.build ~jobs:4 ~data Sites.Cnn.definition in
  let prof = b.Strudel.Site.render_profile in
  let shard_sum =
    List.fold_left
      (fun n (s : Strudel.Render_pool.shard) ->
        n + s.Strudel.Render_pool.sh_pages)
      0 prof.Strudel.Render_pool.rp_shards
  in
  check_int "shards account for every render"
    prof.Strudel.Render_pool.rp_rendered shard_sum;
  check_int "no cache, so rendered = pages" prof.Strudel.Render_pool.rp_pages
    prof.Strudel.Render_pool.rp_rendered;
  check_bool "at least one wave" true (prof.Strudel.Render_pool.rp_waves >= 1)

let suite =
  example_site_tests
  @ [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:
             "parallel builds equal sequential on randomized site inputs \
              (jobs 2,4,8)"
           ~count:10 Test_end_to_end_props.muts_arb
           parallel_equals_sequential_random);
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:
             "degraded builds equal sequential under seeded fault \
              injection (jobs 2,4,8)"
           ~count:10
           QCheck.(pair Test_end_to_end_props.muts_arb small_nat)
           degraded_parallel_equals_sequential);
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:
             "warm-cache parallel rebuilds serve every page from the \
              cache, byte-identically (jobs 2,4,8)"
           ~count:8 Test_end_to_end_props.muts_arb
           warm_cache_parallel_equals_sequential);
      t "slug collision falls back to the sequential generator"
        collision_fallback;
      t "render profile accounts for every page" profile_accounts_pages;
    ]
