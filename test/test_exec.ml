(* The streaming physical-operator engine (Struql.Exec): whole-query
   equivalence with the eager evaluator (same graphs, same Skolem oids,
   same mutation order), per-operator statistics, EXPLAIN / EXPLAIN
   ANALYZE rendering, and the memory win it exists for. *)

open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

let all_strategies =
  [ ("naive", Plan.Naive); ("heuristic", Plan.Heuristic);
    ("costbased", Plan.Cost_based) ]

(* A graph's observable content with oids canonicalized by name, in
   insertion order — equal canonical forms mean the two engines issued
   the identical mutation sequence (Skolem names are derived from the
   data's stable node names, so they agree across runs). *)
let canon g =
  let tname = function
    | Graph.N o -> "N:" ^ Oid.name o
    | Graph.V v -> "V:" ^ Value.to_string v
  in
  let nodes = List.map Oid.name (Graph.nodes g) in
  let edges =
    List.concat_map
      (fun o ->
        List.map (fun (l, tg) -> (Oid.name o, l, tname tg)) (Graph.out_edges g o))
      (Graph.nodes g)
  in
  let colls =
    List.map
      (fun c -> (c, List.map Oid.name (Graph.collection g c)))
      (List.sort compare (Graph.collections g))
  in
  (nodes, edges, colls)

let graphs_agree a b = canon a = canon b

(* Aggregate flush emits its groups in [Hashtbl.iter] order, and the
   group keys embed global oid ids — so aggregate edge *order* differs
   between any two runs (even eager vs eager).  Both engines share the
   flush code; compare aggregate graphs with edges sorted. *)
let graphs_agree_unordered a b =
  let sort (nodes, edges, colls) =
    (nodes, List.sort compare edges, colls)
  in
  sort (canon a) = sort (canon b)

(* ---- fixtures ---- *)

let small_data () =
  let g = Graph.create ~name:"d" () in
  let mk name k =
    let o = Graph.new_node g name in
    Graph.add_to_collection g "C" o;
    Graph.add_edge g o "k" (Graph.V (Value.Int k));
    o
  in
  let a = mk "a" 1 and b = mk "b" 2 in
  ignore (mk "c" 3);
  Graph.add_edge g a "next" (Graph.N b);
  g

let simple_query =
  {|WHERE C(x), x -> "k" -> v
    CREATE F(x)
    LINK F(x) -> "key" -> v
    COLLECT Out(F(x))
    OUTPUT R|}

let nested_query =
  {|WHERE C(x)
    CREATE P(x)
    { WHERE x -> "k" -> v
      LINK P(x) -> "val" -> v }
    { WHERE x -> "next" -> y
      LINK P(x) -> "succ" -> P(y) }
    COLLECT Pages(P(x))
    OUTPUT R|}

let agg_query =
  {|WHERE C(x), x -> "k" -> v
    CREATE S()
    LINK S() -> "total" -> sum(v), S() -> "hi" -> max(v)
    OUTPUT R|}

let both_runs ?into_self q_src strategy =
  let q = Parser.parse q_src in
  let options = { Eval.default_options with strategy } in
  match into_self with
  | None ->
    let g = small_data () in
    (Eval.run ~options g q, Exec.run ~options g q)
  | Some () ->
    (* out == g: both engines construct into the graph they query *)
    let g1 = small_data () and g2 = small_data () in
    (Eval.run ~options ~into:g1 g1 q, Exec.run ~options ~into:g2 g2 q)

let equivalence_cases =
  List.concat_map
    (fun (sname, strategy) ->
      List.map
        (fun (qname, src, agree) ->
          t
            (Printf.sprintf "streaming = eager: %s (%s)" qname sname)
            (fun () ->
              let eager, streaming = both_runs src strategy in
              check_bool "identical graphs" true (agree eager streaming)))
        [ ("simple", simple_query, graphs_agree);
          ("nested", nested_query, graphs_agree);
          ("aggregate", agg_query, graphs_agree_unordered) ])
    all_strategies

(* ---- per-operator statistics ---- *)

let stats_cases =
  [
    t "per-operator row counts" (fun () ->
        let g = small_data () in
        let q = Parser.parse simple_query in
        let _, prof = Exec.run_with_profile g q in
        check_int "one block" 1 (List.length prof.Exec.prf_blocks);
        let bp = List.hd prof.Exec.prf_blocks in
        check_int "rows to construction" 3 bp.Exec.bpr_rows;
        (match bp.Exec.bpr_ops with
         | [ scan; edge ] ->
           check_int "scan in" 1 scan.Exec.os_rows_in;
           check_int "scan out" 3 scan.Exec.os_rows_out;
           check_int "scan batch" 3 scan.Exec.os_max_batch;
           check_bool "scan access" true
             (scan.Exec.os_access = Exec.Coll_scan "C");
           check_int "edge in" 3 edge.Exec.os_rows_in;
           check_int "edge out" 3 edge.Exec.os_rows_out;
           check_bool "edge probes the out-edge index" true
             (edge.Exec.os_access = Exec.Edge_out)
         | ops -> Alcotest.failf "expected 2 operators, got %d" (List.length ops));
        check_int "total rows" 3 prof.Exec.prf_rows;
        check_bool "peak live is positive and small" true
          (prof.Exec.prf_peak_live >= 3 && prof.Exec.prf_peak_live <= 4));
    t "profile totals line up with per-op counters" (fun () ->
        let g = small_data () in
        let q = Parser.parse nested_query in
        let _, prof = Exec.run_with_profile g q in
        check_int "three blocks (parent + 2 nested)" 3
          (List.length prof.Exec.prf_blocks);
        check_int "operators counted" (Exec.profile_steps prof)
          (List.fold_left
             (fun n (b : Exec.block_profile) -> n + List.length b.Exec.bpr_ops)
             0 prof.Exec.prf_blocks);
        check_bool "nested block paths" true
          (List.map (fun (b : Exec.block_profile) -> b.Exec.bpr_path)
             prof.Exec.prf_blocks
           = [ "1"; "1.1"; "1.2" ]));
    t "peak live stays below the eager intermediate on a join" (fun () ->
        (* C(x), C(y), x != y: the eager engine materializes the n^2
           cross product; the pipeline keeps one expansion batch *)
        let g = Graph.create ~name:"j" () in
        for i = 1 to 8 do
          let o = Graph.new_node g (Printf.sprintf "n%d" i) in
          Graph.add_to_collection g "C" o
        done;
        let conds = Parser.parse_conditions {|C(x), C(y), x != y|} in
        let eager_stats = Eval.new_stats () in
        let steps =
          Plan.plan ~registry:Builtins.default g ~bound:[] ~needed_obj:[]
            ~needed_label:[] conds
        in
        let eager =
          Eval.exec_steps ~stats:eager_stats g Builtins.default
            [ Eval.Env.empty ] steps
        in
        let rows, _, peak = Exec.bindings_profiled g conds in
        check_int "same relation size" (List.length eager) (List.length rows);
        check_bool
          (Printf.sprintf "peak %d < eager max intermediate %d" peak
             eager_stats.Eval.max_intermediate)
          true
          (peak < eager_stats.Eval.max_intermediate));
    t "click-time profiled bindings equal eager bindings" (fun () ->
        let g = small_data () in
        let conds = Parser.parse_conditions {|C(x), x -> "k" -> v|} in
        let rows, ops, peak = Exec.bindings_profiled g conds in
        check_int "rows" (List.length (Eval.bindings g conds))
          (List.length rows);
        check_bool "ops recorded" true (ops <> []);
        check_bool "peak recorded" true (peak > 0));
  ]

(* ---- EXPLAIN / EXPLAIN ANALYZE ---- *)

let explain_cases =
  List.map
    (fun (sname, strategy) ->
      t (Printf.sprintf "explain renders the %s plan" sname) (fun () ->
          let g = small_data () in
          let q = Parser.parse simple_query in
          let options = { Eval.default_options with strategy } in
          let plan = Exec.plan_query ~options g q in
          check_bool "strategy recorded" true (plan.Exec.qp_strategy = strategy);
          check_bool "has operators" true
            (List.for_all
               (fun (b : Exec.block_plan) -> b.Exec.bp_steps <> [])
               plan.Exec.qp_blocks);
          let s = Exec.explain ~options g q in
          check_bool "header" true (contains s "QUERY PLAN");
          check_bool "estimates" true (contains s "est rows");
          check_bool "an access path appears" true
            (contains s "scan" || contains s "probe" || contains s "index")))
    all_strategies
  @ List.map
      (fun (sname, strategy) ->
        t
          (Printf.sprintf "explain analyze reports measured rows (%s)" sname)
          (fun () ->
            let g = small_data () in
            let q = Parser.parse simple_query in
            let options = { Eval.default_options with strategy } in
            let _, prof = Exec.run_with_profile ~options ~timed:true g q in
            let s = Fmt.str "%a" Exec.pp_profile prof in
            check_bool "header" true (contains s "EXPLAIN ANALYZE");
            check_bool "strategy named" true
              (contains s
                 (match strategy with
                  | Plan.Naive -> "naive"
                  | Plan.Heuristic -> "heuristic"
                  | Plan.Cost_based -> "cost-based"));
            check_bool "measured rows" true (contains s "out=3");
            check_bool "watermark" true (contains s "batch<=");
            check_bool "peak live" true (contains s "peak live bindings");
            check_bool "timings on" true (contains s "time=")))
      all_strategies

(* ---- the paper's site-definition query, end to end ---- *)

let site_cases =
  List.map
    (fun (sname, strategy) ->
      t
        (Printf.sprintf "paper-example site graph is bit-identical (%s)" sname)
        (fun () ->
          let q = Parser.parse Sites.Paper_example.site_query in
          let options = { Eval.default_options with strategy } in
          let eager = Eval.run ~options (Sites.Paper_example.data ()) q in
          let streaming, prof =
            Exec.run_with_profile ~options (Sites.Paper_example.data ()) q
          in
          check_bool "identical site graphs" true
            (graphs_agree eager streaming);
          check_bool "profile covers nested blocks" true
            (List.exists
               (fun (b : Exec.block_profile) ->
                 String.contains b.Exec.bpr_path '.')
               prof.Exec.prf_blocks)))
    all_strategies
  @ [
      t "into = data graph falls back to materialized construction" (fun () ->
          List.iter
            (fun (_, strategy) ->
              let eager, streaming = both_runs ~into_self:() simple_query strategy in
              check_bool "identical self-mutated graphs" true
                (graphs_agree eager streaming))
            all_strategies);
      t "run_string parses and evaluates" (fun () ->
          let g = small_data () in
          let out = Exec.run_string g simple_query in
          check_int "three pages" 3
            (List.length (Graph.collection out "Out")));
    ]

let suite = equivalence_cases @ stats_cases @ explain_cases @ site_cases
