(* Quickstart: the paper's running example end to end.

   Loads the Fig. 2 bibliography data, evaluates the Fig. 3
   site-definition query, prints the site schema (Fig. 5), renders the
   Fig. 7 templates and writes the browsable site to
   _site/quickstart/.

   Run with: dune exec examples/quickstart.exe *)

open Sgraph

let () =
  (* 1. Data: parse the DDL into a data graph. *)
  let data = Sites.Paper_example.data () in
  Fmt.pr "data graph:  %a@." Graph.pp_stats data;

  (* 2. Structure: evaluate the site-definition query. *)
  let built = Strudel.Site.build ~data Sites.Paper_example.definition in
  Fmt.pr "site graph:  %a@." Graph.pp_stats built.Strudel.Site.site_graph;

  (* The site schema summarizes the structure of every site this query
     can generate. *)
  (match built.Strudel.Site.schemas with
   | (_, schema) :: _ -> Fmt.pr "@.%a@." Schema.Site_schema.pp schema
   | [] -> ());

  (* Integrity constraints, checked on the generated site. *)
  List.iter
    (fun (c, v) ->
      Fmt.pr "constraint [%a]: %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict v)
    built.Strudel.Site.verification;

  (* 3. Presentation: the HTML generator already ran; write the pages. *)
  let dir = "_site/quickstart" in
  if not (Sys.file_exists "_site") then Sys.mkdir "_site" 0o755;
  Template.Generator.write_site ~dir built.Strudel.Site.site;
  Fmt.pr "@.%d pages written to %s/:@."
    (Template.Generator.page_count built.Strudel.Site.site)
    dir;
  List.iter
    (fun p -> Fmt.pr "  %s@." p.Template.Generator.url)
    built.Strudel.Site.site.Template.Generator.pages;

  (* Bonus: one-liner ad-hoc query over the same data. *)
  let ps =
    Strudel.Api.query data
      {|WHERE Publications(p), p -> "postscript" -> q, isPostScript(q)
        COLLECT PostscriptPapers(p)
        OUTPUT PS|}
  in
  Fmt.pr "@.publications with PostScript: %d@."
    (Graph.collection_size ps "PostscriptPapers")
