examples/cnn_site.ml: Fmt Graph List Sgraph Sites String Strudel Sys Template
