examples/cnn_site.mli:
