examples/quickstart.mli:
