examples/org_site.ml: Fmt Graph List Mediator Printf Schema Sgraph Sites String Strudel Sys Template Wrappers
