examples/xml_pipeline.ml: Fmt Graph List Oid Schema Sgraph String Strudel Sys Template Xml
