examples/homepage_site.mli:
