examples/org_site.mli:
