examples/rodin_site.ml: Fmt Graph List Option Schema Sgraph Sites Strudel Sys Template
