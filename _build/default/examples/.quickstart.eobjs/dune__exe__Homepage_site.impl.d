examples/homepage_site.ml: Fmt Graph List Schema Sgraph Sites String Strudel Sys Template
