examples/rodin_site.mli:
