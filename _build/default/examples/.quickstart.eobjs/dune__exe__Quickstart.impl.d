examples/quickstart.ml: Fmt Graph List Schema Sgraph Sites Strudel Sys Template
