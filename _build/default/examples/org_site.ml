(* The organization site — the paper's largest example (§5.1): five
   data sources integrated by the GAV warehousing mediator, ~400
   personal home pages plus organization / project / research-area /
   publication pages, integrity-constraint verification, and an
   external version produced by swapping five templates over the same
   site graph.

   Run with: dune exec examples/org_site.exe *)

open Sgraph

let () =
  let sources, w = Sites.Org.data () in
  let mediated = Mediator.Warehouse.graph w in
  Fmt.pr "mediated graph: %a@." Graph.pp_stats mediated;
  Fmt.pr "  collections: %s@."
    (String.concat ", "
       (List.map
          (fun c -> Printf.sprintf "%s(%d)" c (Graph.collection_size mediated c))
          (Graph.collections mediated)));

  let internal = Strudel.Site.build ~data:mediated Sites.Org.definition in
  let external_ =
    Strudel.Site.regenerate internal Sites.Org.external_templates
  in
  Fmt.pr "site graph: %a@." Graph.pp_stats internal.Strudel.Site.site_graph;
  Fmt.pr "spec: %a@." Strudel.Site.pp_spec_stats
    (Strudel.Site.spec_stats Sites.Org.definition);
  Fmt.pr "internal pages: %d; external pages: %d@."
    (Template.Generator.page_count internal.Strudel.Site.site)
    (Template.Generator.page_count external_.Strudel.Site.site);

  List.iter
    (fun (c, v) ->
      Fmt.pr "constraint [%a]: %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict v)
    internal.Strudel.Site.verification;

  (* a stale source triggers a warehouse refresh *)
  Mediator.Source.update sources.Sites.Org.projects (fun () ->
      fst
        (Wrappers.Structured_file.load
           (Wrappers.Synth.projects_file ~seed:42 ~projects:35 ~people:400 ())));
  Fmt.pr "warehouse stale after source update: %b@."
    (Mediator.Warehouse.stale w);
  ignore (Mediator.Warehouse.refresh w);
  Fmt.pr "refreshed; mediated now: %a@." Graph.pp_stats
    (Mediator.Warehouse.graph w);

  if not (Sys.file_exists "_site") then Sys.mkdir "_site" 0o755;
  Template.Generator.write_site ~dir:"_site/org-internal"
    internal.Strudel.Site.site;
  Template.Generator.write_site ~dir:"_site/org-external"
    external_.Strudel.Site.site;

  (* dot export of the site schema — the visual map of the site *)
  (match internal.Strudel.Site.schemas with
   | (_, schema) :: _ ->
     let oc = open_out "_site/org-schema.dot" in
     output_string oc (Schema.Dot.of_schema schema);
     close_out oc;
     Fmt.pr "site schema written to _site/org-schema.dot@."
   | [] -> ());
  Fmt.pr "written to _site/org-internal/ and _site/org-external/@."
