(* XML as a data source (§2.2's anticipated exchange language): wrap an
   RSS-like XML feed into a data graph with the generic XML wrapper,
   restructure it with StruQL, and render a browsable site — no custom
   wrapper code.

   Run with: dune exec examples/xml_pipeline.exe *)

open Sgraph

let feed_xml =
  {|<?xml version="1.0"?>
<rss>
  <channel>
    <title>Research Lab News</title>
    <item>
      <title>STRUDEL demonstrated at SIGMOD</title>
      <category>Databases</category>
      <pubDate>1997-05-13</pubDate>
      <description>A Web-site management system built on a semistructured data model.</description>
    </item>
    <item>
      <title>Query optimizer for semistructured data</title>
      <category>Databases</category>
      <pubDate>1997-08-02</pubDate>
      <description>Cost-based plan enumeration with schema indexes.</description>
    </item>
    <item>
      <title>New proof assistant release</title>
      <category>Verification</category>
      <pubDate>1997-09-20</pubDate>
      <description>Improved tactics and a faster kernel.</description>
    </item>
  </channel>
</rss>|}

(* Restructure the raw element tree (tag/child/text edges) into a site:
   one page per item, grouped by category. *)
let site_query =
  {|INPUT FEED
{ CREATE Home()
  COLLECT Homes(Home()) }
{ WHERE Documents(d), d -> "child"* -> item, item -> "tag" -> t, t = "item"
  CREATE ItemPage(item)
  LINK Home() -> "Item" -> ItemPage(item)
  COLLECT ItemPages(ItemPage(item))
  { WHERE item -> "child" -> f, f -> "tag" -> ft, f -> "text" -> txt
    LINK ItemPage(item) -> ft -> txt }
  { WHERE item -> "child" -> f, f -> "tag" -> ft, ft = "category",
          f -> "text" -> cat
    CREATE CategoryPage(cat)
    LINK CategoryPage(cat) -> "Name" -> cat,
         CategoryPage(cat) -> "Item" -> ItemPage(item),
         Home() -> "Category" -> CategoryPage(cat)
    COLLECT CategoryPages(CategoryPage(cat)) }
}
OUTPUT FEEDSITE
|}

let templates =
  {
    Template.Generator.empty_templates with
    Template.Generator.by_collection =
      [
        ( "Homes",
          {|<h1>Lab News</h1>
<h3>Categories</h3>
<SFMTLIST @Category ORDER=ascend KEY=Name>
<h3>All items</h3>
<SFMTLIST @Item ORDER=descend KEY=pubDate>|} );
        ( "ItemPages",
          {|<h1><SFMT @title></h1>
<p><i><SFMT @pubDate></i></p>
<p><SFMT @description></p>|} );
        ( "CategoryPages",
          {|<h1><SFMT @Name></h1>
<SFMTLIST @Item ORDER=descend KEY=pubDate>|} );
      ];
  }

let () =
  (* 1. wrap the XML *)
  let g = Graph.create ~name:"FEED" () in
  let root = Xml.wrap_document g ~name:"feed" (Xml.parse_element feed_xml) in
  Fmt.pr "wrapped feed: %a (root %s)@." Graph.pp_stats g (Oid.name root);

  (* 2+3. restructure and render *)
  let def =
    Strudel.Site.define ~name:"FEEDSITE" ~root_family:"Home" ~templates
      ~constraints:
        [ Schema.Verify.Reachable_from "Home";
          Schema.Verify.Points_to ("CategoryPage", "Item", "ItemPage") ]
      [ ("site", site_query) ]
  in
  let built = Strudel.Site.build ~data:g def in
  Fmt.pr "site: %a, %d pages@." Graph.pp_stats built.Strudel.Site.site_graph
    (Template.Generator.page_count built.Strudel.Site.site);
  List.iter
    (fun (c, v) ->
      Fmt.pr "constraint [%a]: %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict v)
    built.Strudel.Site.verification;

  (* export the mediated data for exchange *)
  Fmt.pr "@.data graph as XML (first lines):@.";
  let xml = Xml.export g in
  String.split_on_char '\n' xml
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter print_endline;

  if not (Sys.file_exists "_site") then Sys.mkdir "_site" 0o755;
  Template.Generator.write_site ~dir:"_site/feed" built.Strudel.Site.site;
  Fmt.pr "@.written to _site/feed/@."
