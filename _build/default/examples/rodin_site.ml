(* The INRIA-Rodin bilingual site (§5.1): one StruQL query defines the
   English and French views of the site and cross-links every page with
   its translation.

   Run with: dune exec examples/rodin_site.exe *)

open Sgraph

let () =
  let built = Sites.Rodin.build () in
  Fmt.pr "site graph: %a@." Graph.pp_stats built.Strudel.Site.site_graph;
  Fmt.pr "pages: %d (one English + one French per entity)@."
    (Template.Generator.page_count built.Strudel.Site.site);

  (* the cross-linking constraints are the point of this site *)
  List.iter
    (fun (c, v) ->
      Fmt.pr "constraint [%a]: %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict v)
    built.Strudel.Site.verification;

  (* show a page pair *)
  let sg = built.Strudel.Site.site_graph in
  (match Schema.Verify.family_members sg "EnProject" with
   | en :: _ ->
     let page o =
       (Option.get (Template.Generator.page_of_object built.Strudel.Site.site o))
         .Template.Generator.html
     in
     Fmt.pr "@.English page:@.%s@." (page en);
     (match Graph.attr1 sg en "Translation" with
      | Some (Graph.N fr) -> Fmt.pr "French twin:@.%s@." (page fr)
      | _ -> ())
   | [] -> ());

  if not (Sys.file_exists "_site") then Sys.mkdir "_site" 0o755;
  Template.Generator.write_site ~dir:"_site/rodin" built.Strudel.Site.site;
  Fmt.pr "written to _site/rodin/@."
