(* The researcher-homepage example (the paper's "mff" site):
   two data sources (BibTeX + a STRUDEL data file), a 48-line
   site-definition query, and internal/external versions produced from
   the SAME site graph with different template sets.

   Run with: dune exec examples/homepage_site.exe *)

open Sgraph

let () =
  let internal, external_ = Sites.Homepage.build_both ~entries:30 () in
  Fmt.pr "site graph: %a@." Graph.pp_stats internal.Strudel.Site.site_graph;
  Fmt.pr "spec: %a@." Strudel.Site.pp_spec_stats
    (Strudel.Site.spec_stats Sites.Homepage.definition);

  (* constraints *)
  List.iter
    (fun (c, v) ->
      Fmt.pr "constraint [%a]: %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict v)
    internal.Strudel.Site.verification;

  if not (Sys.file_exists "_site") then Sys.mkdir "_site" 0o755;
  Template.Generator.write_site ~dir:"_site/homepage-internal"
    internal.Strudel.Site.site;
  Template.Generator.write_site ~dir:"_site/homepage-external"
    external_.Strudel.Site.site;
  Fmt.pr "internal: %d pages -> _site/homepage-internal/@."
    (Template.Generator.page_count internal.Strudel.Site.site);
  Fmt.pr "external: %d pages -> _site/homepage-external/@."
    (Template.Generator.page_count external_.Strudel.Site.site);

  (* The external version must not leak patents or proprietary
     projects: grep the generated HTML. *)
  let leaks site needle =
    List.exists
      (fun p ->
        let html = p.Template.Generator.html in
        let n = String.length needle and h = String.length html in
        let rec find i =
          i + n <= h && (String.sub html i n = needle || find (i + 1))
        in
        find 0)
      site.Template.Generator.pages
  in
  Fmt.pr "internal shows patents: %b (expected true)@."
    (leaks internal.Strudel.Site.site "US0000001");
  Fmt.pr "external shows patents: %b (expected false)@."
    (leaks external_.Strudel.Site.site "US0000001");
  Fmt.pr "external shows proprietary project: %b (expected false)@."
    (leaks external_.Strudel.Site.site "MLRISC")
