(* The CNN demonstration site (§5.1): ~300 articles, a general site, a
   sports-only variant whose query differs by two extra predicates, a
   text-only presentation of the same site graph, and the §3 TextOnly
   derived-site query.  Also demonstrates click-time materialization:
   browsing a few pages materializes only a fraction of the site.

   Run with: dune exec examples/cnn_site.exe *)

open Sgraph

let () =
  let data = Sites.Cnn.data ~articles:300 () in
  Fmt.pr "article base: %a@." Graph.pp_stats data;

  (* 1. the general site *)
  let general = Strudel.Site.build ~data Sites.Cnn.definition in
  Fmt.pr "general site: %d pages, %a@."
    (Template.Generator.page_count general.Strudel.Site.site)
    Graph.pp_stats general.Strudel.Site.site_graph;

  (* 2. sports only: same data, same templates, two extra predicates *)
  let sports = Strudel.Site.build ~data Sites.Cnn.sports_definition in
  Fmt.pr "sports-only site: %d pages@."
    (Template.Generator.page_count sports.Strudel.Site.site);

  (* 3. text-only: same site graph, one changed template *)
  let text_only =
    Strudel.Site.regenerate general Sites.Cnn.text_only_templates
  in
  let count_imgs site =
    List.fold_left
      (fun n p ->
        let html = p.Template.Generator.html in
        let rec go i acc =
          if i + 4 > String.length html then acc
          else if String.sub html i 4 = "<img" then go (i + 4) (acc + 1)
          else go (i + 1) acc
        in
        go 0 n)
      0 site.Template.Generator.pages
  in
  Fmt.pr "images in general site: %d; in text-only: %d@."
    (count_imgs general.Strudel.Site.site)
    (count_imgs text_only.Strudel.Site.site);

  (* 4. the §3 TextOnly derived site: a query over the site graph *)
  let derived =
    Strudel.Api.query general.Strudel.Site.site_graph
      Sites.Cnn.text_only_copy_query
  in
  Fmt.pr "TextOnly derived graph: %a@." Graph.pp_stats derived;

  (* 5. click-time browsing *)
  let ct = Strudel.Materialize.Click_time.start ~data Sites.Cnn.definition in
  let visited =
    Strudel.Materialize.Click_time.random_walk ct ~clicks:25 ~seed:99
  in
  let st = Strudel.Materialize.Click_time.stats ct in
  Fmt.pr
    "click-time after %d clicks: %d node expansions, %d queries, %d cache \
     hits; materialized %d/%d nodes@."
    visited st.Strudel.Materialize.Click_time.expansions
    st.Strudel.Materialize.Click_time.queries
    st.Strudel.Materialize.Click_time.cache_hits
    st.Strudel.Materialize.Click_time.materialized_nodes
    (Graph.node_count general.Strudel.Site.site_graph);

  if not (Sys.file_exists "_site") then Sys.mkdir "_site" 0o755;
  Template.Generator.write_site ~dir:"_site/cnn" general.Strudel.Site.site;
  Template.Generator.write_site ~dir:"_site/cnn-sports"
    sports.Strudel.Site.site;
  Fmt.pr "written to _site/cnn/ and _site/cnn-sports/@."
