(** XML as a data-exchange format.

    The paper (§2.2) names XML as "another possible data exchange
    language between the wrappers and the mediator layer of Strudel";
    this module provides it, alongside the OEM-style DDL of {!Ddl}.

    The encoding maps one object per [<object>] element:

    {v
    <graph name="BIBTEX">
      <object id="pub1" in="Publications">
        <title type="string">Specifying Representations</title>
        <year type="int">1997</year>
        <postscript type="ps">papers/toplas97.ps.gz</postscript>
        <related ref="pub2"/>
      </object>
    </graph>
    v}

    Attribute labels that are valid XML names become element names;
    any other label is carried as [<attr name="...">].  [ref]
    attributes denote edges to other objects (forward references
    allowed); a [type] attribute selects the value reading
    ([string], [int], [float], [bool], [null], [url], [text], [ps],
    [image], [html], or any other file kind). *)

exception Xml_error of string * int  (** message, line *)

val export : Graph.t -> string
(** Serialize a graph to the XML exchange format. *)

val import : ?graph_name:string -> string -> Graph.t
(** Parse the XML exchange format into a fresh graph. *)

val import_into : Graph.t -> string -> unit
(** Parse, adding the objects to an existing graph. *)

(** {1 Generic XML access}

    The underlying parser, usable as a wrapper for arbitrary XML
    sources (an element tree with attributes and text). *)

type element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

and node = Element of element | Text of string

val parse_element : string -> element
(** Parse a whole XML document to its root element. *)

val wrap_document :
  ?collection:string -> Graph.t -> name:string -> element -> Oid.t
(** Generic XML wrapper: load an arbitrary XML element tree into the
    graph — one object per element, [tag] attribute for the element
    name, XML attributes and text content as value edges, children as
    [child] edges.  Returns the root object. *)
