(** Graph algorithms over the semistructured model: reachability,
    connectivity and strongly connected components.  Used by the
    integrity-constraint verifier ("all pages are reachable from the
    root") and by the incremental evaluator. *)

val reachable : Graph.t -> Oid.t list -> Oid.Set.t
(** Internal objects reachable from the given roots by any path
    (including the roots themselves). *)

val reachable_via : Graph.t -> pred:(string -> bool) -> Oid.t list -> Oid.Set.t
(** Reachability restricted to edges whose label satisfies [pred]. *)

val unreachable_nodes : Graph.t -> Oid.t list -> Oid.t list
(** Nodes of the graph not reachable from the roots. *)

val distances : Graph.t -> Oid.t -> int Oid.Map.t
(** BFS hop distance from the root to every reachable node. *)

val has_path : Graph.t -> Oid.t -> Oid.t -> bool

val predecessors : Graph.t -> Oid.t list -> Oid.Set.t
(** Objects from which some root is reachable (reverse reachability);
    the affected-page set of the incremental evaluator. *)

val strongly_connected_components : Graph.t -> Oid.t list list
(** Tarjan's algorithm; components in reverse topological order. *)

val is_dag : Graph.t -> bool
