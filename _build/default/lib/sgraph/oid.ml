type t = { id : int; name : string }

let counter = ref 0

let fresh name =
  incr counter;
  { id = !counter; name }

let id t = t.id
let name t = t.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id

let pp ppf t = Fmt.pf ppf "&%s#%d" t.name t.id
let pp_name ppf t = Fmt.string ppf t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
