let successors_via g pred o =
  List.filter_map
    (fun (l, t) ->
      match t with Graph.N o' when pred l -> Some o' | _ -> None)
    (Graph.out_edges g o)

let reachable_via g ~pred roots =
  (* iterative DFS: site graphs can have very long chains *)
  let visited = ref Oid.Set.empty in
  let stack = ref roots in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | o :: rest ->
      stack := rest;
      if not (Oid.Set.mem o !visited) then begin
        visited := Oid.Set.add o !visited;
        stack := successors_via g pred o @ !stack
      end
  done;
  !visited

let reachable g roots = reachable_via g ~pred:(fun _ -> true) roots

let unreachable_nodes g roots =
  let r = reachable g roots in
  List.filter (fun o -> not (Oid.Set.mem o r)) (Graph.nodes g)

let distances g root =
  let dist = ref Oid.Map.empty in
  let queue = Queue.create () in
  dist := Oid.Map.add root 0 !dist;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    let d = Oid.Map.find o !dist in
    List.iter
      (fun o' ->
        if not (Oid.Map.mem o' !dist) then begin
          dist := Oid.Map.add o' (d + 1) !dist;
          Queue.add o' queue
        end)
      (successors_via g (fun _ -> true) o)
  done;
  !dist

let has_path g src dst = Oid.Set.mem dst (reachable g [ src ])

let predecessors g targets =
  let target_set = List.fold_left (fun s o -> Oid.Set.add o s) Oid.Set.empty targets in
  let visited = ref target_set in
  let queue = Queue.create () in
  List.iter (fun o -> Queue.add o queue) targets;
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    List.iter
      (fun (src, _) ->
        if not (Oid.Set.mem src !visited) then begin
          visited := Oid.Set.add src !visited;
          Queue.add src queue
        end)
      (Graph.in_edges g (Graph.N o))
  done;
  !visited

(* Tarjan's SCC, iterative to avoid stack overflow on long chains. *)
let strongly_connected_components g =
  let index = Oid.Tbl.create 64 in
  let lowlink = Oid.Tbl.create 64 in
  let on_stack = Oid.Tbl.create 64 in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Oid.Tbl.replace index v !next_index;
    Oid.Tbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Oid.Tbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Oid.Tbl.mem index w) then begin
          strongconnect w;
          let lv = Oid.Tbl.find lowlink v and lw = Oid.Tbl.find lowlink w in
          if lw < lv then Oid.Tbl.replace lowlink v lw
        end
        else if Oid.Tbl.find_opt on_stack w = Some true then begin
          let lv = Oid.Tbl.find lowlink v and iw = Oid.Tbl.find index w in
          if iw < lv then Oid.Tbl.replace lowlink v iw
        end)
      (successors_via g (fun _ -> true) v);
    if Oid.Tbl.find lowlink v = Oid.Tbl.find index v then begin
      let comp = ref [] in
      let fin = ref false in
      while not !fin do
        match !stack with
        | [] -> fin := true
        | w :: rest ->
          stack := rest;
          Oid.Tbl.replace on_stack w false;
          comp := w :: !comp;
          if Oid.equal w v then fin := true
      done;
      sccs := !comp :: !sccs
    end
  in
  List.iter
    (fun v -> if not (Oid.Tbl.mem index v) then strongconnect v)
    (Graph.nodes g);
  List.rev !sccs

let is_dag g =
  List.for_all
    (fun comp -> match comp with [ _ ] -> true | _ -> false)
    (strongly_connected_components g)
  &&
  (* single-node components may still carry self loops *)
  List.for_all
    (fun o ->
      not
        (List.exists
           (fun (_, t) -> Graph.target_equal t (Graph.N o))
           (Graph.out_edges g o)))
    (Graph.nodes g)
