(** Object identifiers.

    Every internal object of a graph is identified by a unique oid.  An
    oid carries a human-readable [name] — either the name given in a
    data file (["pub1"]) or the Skolem term that created it
    (["YearPage(1997)"]).  Identity is by the numeric [id]; names are
    not required to be unique. *)

type t

val fresh : string -> t
(** [fresh name] allocates a new oid, distinct from all previously
    allocated ones. *)

val id : t -> int
val name : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints ["&name#id"] in full form. *)

val pp_name : Format.formatter -> t -> unit
(** Prints just the name — the form used in data files and examples. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
