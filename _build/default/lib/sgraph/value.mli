(** Atomic values of the semistructured data model.

    STRUDEL supports several atomic types that commonly appear in Web
    pages (integers, strings, URLs, and PostScript, text, image and HTML
    files).  Values are compared with dynamic coercion: an [Int 1997]
    compares equal to a [String "1997"], mirroring the paper's "values
    are coerced dynamically when they are compared at run time". *)

type file_kind =
  | Text
  | Postscript
  | Image
  | Html_file
  | Other_file of string

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Url of string
  | File of file_kind * string  (** kind and path of the file *)

val equal : t -> t -> bool
(** Structural equality, no coercion. *)

val compare : t -> t -> int
(** Total structural order (used for indexing). *)

val coerce_equal : t -> t -> bool
(** Equality with dynamic coercion between numeric and string
    representations, e.g. [Int 3 = String "3"] and
    [Float 2. = Int 2]. *)

val coerce_compare : t -> t -> int option
(** Ordering with dynamic coercion; [None] when the two values are not
    comparable even after coercion (e.g. a file and a bool). *)

val is_null : t -> bool
val is_file : t -> bool
val is_postscript : t -> bool
val is_image : t -> bool
val is_text : t -> bool
val is_html_file : t -> bool
val is_url : t -> bool

val to_display_string : t -> string
(** The string used when the value is embedded in an HTML page. *)

val file_kind_name : file_kind -> string
val file_kind_of_name : string -> file_kind option

val kind_name : t -> string
(** A short tag naming the constructor ("int", "string", "ps", ...). *)

val of_literal : string -> t
(** Parse a bare literal as it appears in data files: integers, floats,
    [true]/[false]/[null], URLs (strings starting with a scheme), and
    otherwise a string.  File coercion is applied separately by the DDL
    loader using collection directives. *)

val pp : Format.formatter -> t -> unit
(** Print in the data-definition-language syntax (strings quoted). *)

val to_string : t -> string
