type file_kind =
  | Text
  | Postscript
  | Image
  | Html_file
  | Other_file of string

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Url of string
  | File of file_kind * string

let equal (a : t) (b : t) = Stdlib.compare a b = 0
let compare (a : t) (b : t) = Stdlib.compare a b

let float_of_value = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String s | Url s -> float_of_string_opt (String.trim s)
  | Bool _ | Null | File _ -> None

let string_of_simple = function
  | Int i -> Some (string_of_int i)
  | Float f -> Some (string_of_float f)
  | String s | Url s -> Some s
  | Bool b -> Some (string_of_bool b)
  | Null | File _ -> None

(* Coercion policy: identical constructors compare structurally; a
   numeric and a string compare numerically when the string parses as a
   number, otherwise the number is rendered as a string.  Files compare
   by path only against files. *)
let rec coerce_compare a b =
  match a, b with
  | Null, Null -> Some 0
  | Null, _ | _, Null -> None
  | Bool x, Bool y -> Some (Stdlib.compare x y)
  | Int x, Int y -> Some (Stdlib.compare x y)
  | Float x, Float y -> Some (Stdlib.compare x y)
  | Int x, Float y | Float y, Int x ->
    Some (Stdlib.compare (float_of_int x) y * (match a with Int _ -> 1 | _ -> -1))
  | (String _ | Url _), (String _ | Url _) ->
    (match string_of_simple a, string_of_simple b with
     | Some x, Some y -> Some (Stdlib.compare x y)
     | _ -> None)
  | (Int _ | Float _), (String _ | Url _) ->
    (match float_of_value b with
     | Some fb ->
       (match float_of_value a with
        | Some fa -> Some (Stdlib.compare fa fb)
        | None -> None)
     | None ->
       (match string_of_simple a, string_of_simple b with
        | Some x, Some y -> Some (Stdlib.compare x y)
        | _ -> None))
  | (String _ | Url _), (Int _ | Float _) ->
    (match coerce_compare b a with Some c -> Some (-c) | None -> None)
  | File (_, p), File (_, q) -> Some (Stdlib.compare p q)
  | Bool x, String s | String s, Bool x ->
    (match bool_of_string_opt (String.trim s) with
     | Some y ->
       let c = Stdlib.compare x y in
       Some (match a with Bool _ -> c | _ -> -c)
     | None -> None)
  | _ -> None

let coerce_equal a b = match coerce_compare a b with Some 0 -> true | _ -> false

let is_null = function Null -> true | _ -> false
let is_file = function File _ -> true | _ -> false
let is_postscript = function File (Postscript, _) -> true | _ -> false
let is_image = function File (Image, _) -> true | _ -> false
let is_text = function File (Text, _) -> true | _ -> false
let is_html_file = function File (Html_file, _) -> true | _ -> false
let is_url = function Url _ -> true | _ -> false

let to_display_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> s
  | Url u -> u
  | File (_, path) -> path

let file_kind_name = function
  | Text -> "text"
  | Postscript -> "ps"
  | Image -> "image"
  | Html_file -> "html"
  | Other_file s -> s

let file_kind_of_name = function
  | "text" -> Some Text
  | "ps" | "postscript" -> Some Postscript
  | "image" | "img" -> Some Image
  | "html" -> Some Html_file
  | _ -> None

let kind_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Url _ -> "url"
  | File (k, _) -> file_kind_name k

let has_url_scheme s =
  let schemes = [ "http://"; "https://"; "ftp://"; "mailto:"; "file://" ] in
  List.exists
    (fun p ->
      String.length s >= String.length p
      && String.sub s 0 (String.length p) = p)
    schemes

let of_literal s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Float f
     | None ->
       (match s with
        | "true" -> Bool true
        | "false" -> Bool false
        | "null" -> Null
        | _ -> if has_url_scheme s then Url s else String s))

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print with an explicit decimal point (or exponent) so that the
   DDL reader does not reread an integral float as an [Int]. *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_literal f)
  | String s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Url u -> Fmt.pf ppf "url \"%s\"" (escape_string u)
  | File (k, p) -> Fmt.pf ppf "%s \"%s\"" (file_kind_name k) (escape_string p)

let to_string v = Fmt.str "%a" pp v
