(** STRUDEL's data-definition language (Fig. 2 of the paper).

    The textual format in which data is exchanged between wrappers, the
    repository and the mediator:

    {v
    collection Publications { abstract text postscript ps }
    object pub1 in Publications {
      title "Specifying Representations..."
      author "Norman Ramsey"
      year 1997
      postscript "papers/toplas97.ps.gz"
      related &pub2
      address { city "Florham Park" zip "07932" }
    }
    v}

    A [collection] declaration gives default types for attribute values
    that would otherwise be read as strings (e.g. [abstract] is a text
    file, [postscript] a PostScript file).  Directives are defaults, not
    constraints, and can be overridden by explicitly typed values
    ([ps "..."], [url "..."], ...).  [&name] is a reference to another
    object (forward references allowed); [{ ... }] introduces an
    anonymous nested object. *)

exception Ddl_error of string * int  (** message, line *)

type directives = (string * (string * Value.file_kind) list) list
(** Per collection, the attribute → file-kind defaults. *)

val parse : ?graph_name:string -> string -> Graph.t * directives
(** Parse a DDL text into a fresh graph. *)

val parse_into : Graph.t -> string -> directives
(** Parse, adding the objects to an existing graph. *)

val print : ?directives:directives -> Graph.t -> string
(** Print a graph in DDL syntax.  Every node becomes a top-level
    object; node references use [&name] with names made unique.
    [parse (print g)] reconstructs a graph isomorphic to [g]. *)

val pp : Format.formatter -> Graph.t -> unit
