exception Xml_error of string * int

type element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

and node = Element of element | Text of string

(* --- A small XML parser: elements, attributes, text, self-closing
   tags, comments, declarations, the five predefined entities and
   numeric character references. --- *)

type pstate = { src : string; mutable pos : int; mutable line : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p =
  (match peek p with Some '\n' -> p.line <- p.line + 1 | _ -> ());
  p.pos <- p.pos + 1

let error p msg = raise (Xml_error (msg, p.line))

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance p
  done

let starts_with p s =
  let n = String.length s in
  p.pos + n <= String.length p.src && String.sub p.src p.pos n = s

let skip_string p s =
  if starts_with p s then
    for _ = 1 to String.length s do
      advance p
    done
  else error p (Printf.sprintf "expected %S" s)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name p =
  let start = p.pos in
  (match peek p with
   | Some c when is_name_start c -> advance p
   | _ -> error p "expected a name");
  while (match peek p with Some c -> is_name_char c | None -> false) do
    advance p
  done;
  String.sub p.src start (p.pos - start)

let decode_entities p s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | None -> error p "unterminated entity"
      | Some j ->
        let ent = String.sub s (!i + 1) (j - !i - 1) in
        (match ent with
         | "lt" -> Buffer.add_char buf '<'
         | "gt" -> Buffer.add_char buf '>'
         | "amp" -> Buffer.add_char buf '&'
         | "quot" -> Buffer.add_char buf '"'
         | "apos" -> Buffer.add_char buf '\''
         | _ when String.length ent > 1 && ent.[0] = '#' ->
           let code =
             if ent.[1] = 'x' || ent.[1] = 'X' then
               int_of_string_opt ("0x" ^ String.sub ent 2 (String.length ent - 2))
             else int_of_string_opt (String.sub ent 1 (String.length ent - 1))
           in
           (match code with
            | Some c when c < 128 -> Buffer.add_char buf (Char.chr c)
            | Some _ -> Buffer.add_string buf "?"  (* non-ASCII: placeholder *)
            | None -> error p ("bad character reference &" ^ ent ^ ";"))
         | _ -> error p ("unknown entity &" ^ ent ^ ";"));
        i := j + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let read_attr_value p =
  let q =
    match peek p with
    | Some (('"' | '\'') as q) ->
      advance p;
      q
    | _ -> error p "expected a quoted attribute value"
  in
  let start = p.pos in
  while (match peek p with Some c -> c <> q | None -> false) do
    advance p
  done;
  (match peek p with Some _ -> () | None -> error p "unterminated attribute");
  let raw = String.sub p.src start (p.pos - start) in
  advance p;
  decode_entities p raw

let rec skip_misc p =
  skip_ws p;
  if starts_with p "<!--" then begin
    skip_string p "<!--";
    while not (starts_with p "-->") do
      if peek p = None then error p "unterminated comment";
      advance p
    done;
    skip_string p "-->";
    skip_misc p
  end
  else if starts_with p "<?" then begin
    skip_string p "<?";
    while not (starts_with p "?>") do
      if peek p = None then error p "unterminated declaration";
      advance p
    done;
    skip_string p "?>";
    skip_misc p
  end
  else if starts_with p "<!" then begin
    (* DOCTYPE and friends: skip to '>' *)
    while peek p <> Some '>' do
      if peek p = None then error p "unterminated <! section";
      advance p
    done;
    advance p;
    skip_misc p
  end

let rec parse_elem p : element =
  skip_string p "<";
  let tag = read_name p in
  let attrs = ref [] in
  let rec attrs_loop () =
    skip_ws p;
    match peek p with
    | Some '/' | Some '>' -> ()
    | Some c when is_name_start c ->
      let name = read_name p in
      skip_ws p;
      skip_string p "=";
      skip_ws p;
      let v = read_attr_value p in
      attrs := (name, v) :: !attrs;
      attrs_loop ()
    | _ -> error p "expected an attribute or tag close"
  in
  attrs_loop ();
  if starts_with p "/>" then begin
    skip_string p "/>";
    { tag; attrs = List.rev !attrs; children = [] }
  end
  else begin
    skip_string p ">";
    let children = ref [] in
    let fin = ref false in
    while not !fin do
      if starts_with p "</" then begin
        skip_string p "</";
        let close = read_name p in
        if close <> tag then
          error p (Printf.sprintf "mismatched </%s> for <%s>" close tag);
        skip_ws p;
        skip_string p ">";
        fin := true
      end
      else if starts_with p "<!--" || starts_with p "<?" then skip_misc p
      else if peek p = Some '<' then
        children := Element (parse_elem p) :: !children
      else begin
        let start = p.pos in
        while peek p <> Some '<' && peek p <> None do
          advance p
        done;
        if peek p = None then error p ("unterminated <" ^ tag ^ ">");
        let text = decode_entities p (String.sub p.src start (p.pos - start)) in
        if String.trim text <> "" then children := Text text :: !children
      end
    done;
    { tag; attrs = List.rev !attrs; children = List.rev !children }
  end

let parse_element src =
  let p = { src; pos = 0; line = 1 } in
  skip_misc p;
  let e = parse_elem p in
  skip_misc p;
  if peek p <> None then error p "trailing content after root element";
  e

(* --- Escaping --- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let valid_xml_name s =
  String.length s > 0
  && is_name_start s.[0]
  && s.[0] <> ':'
  && String.for_all (fun c -> is_name_char c) s
  (* avoid colliding with our own reserved tags *)
  && s <> "object" && s <> "graph" && s <> "attr"

(* --- Export --- *)

let text_of_element e =
  String.concat ""
    (List.filter_map (function Text t -> Some t | Element _ -> None) e.children)

let export (g : Graph.t) : string =
  let buf = Buffer.create 4096 in
  let names = Hashtbl.create 64 in
  (* unique printable ids, like the DDL printer *)
  let used = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let base =
        let n = Oid.name o in
        if n <> "" then n else Printf.sprintf "obj_%d" (Oid.id o)
      in
      let id =
        if Hashtbl.mem used base then Printf.sprintf "%s_%d" base (Oid.id o)
        else base
      in
      Hashtbl.replace used id ();
      Hashtbl.replace names (Oid.id o) id)
    (Graph.nodes g);
  Buffer.add_string buf
    (Printf.sprintf "<?xml version=\"1.0\"?>\n<graph name=\"%s\">\n"
       (escape (Graph.name g)));
  List.iter
    (fun o ->
      let colls = Graph.collections_of g o in
      Buffer.add_string buf
        (Printf.sprintf "  <object id=\"%s\"%s>\n"
           (escape (Hashtbl.find names (Oid.id o)))
           (if colls = [] then ""
            else
              Printf.sprintf " in=\"%s\"" (escape (String.concat " " colls))));
      List.iter
        (fun (l, tgt) ->
          let open_tag, close_tag =
            if valid_xml_name l then (l, l)
            else ("attr name=\"" ^ escape l ^ "\"", "attr")
          in
          (match tgt with
           | Graph.N o' ->
             Buffer.add_string buf
               (Printf.sprintf "    <%s ref=\"%s\"/>\n" open_tag
                  (escape (Hashtbl.find names (Oid.id o'))))
           | Graph.V v ->
             Buffer.add_string buf
               (Printf.sprintf "    <%s type=\"%s\">%s</%s>\n" open_tag
                  (Value.kind_name v)
                  (escape (Value.to_display_string v))
                  close_tag)))
        (Graph.out_edges g o);
      Buffer.add_string buf "  </object>\n")
    (Graph.nodes g);
  Buffer.add_string buf "</graph>\n";
  Buffer.contents buf

(* --- Import --- *)

let value_of ~ty ~text =
  match ty with
  | "string" -> Value.String text
  | "int" -> (
      match int_of_string_opt (String.trim text) with
      | Some i -> Value.Int i
      | None -> Value.String text)
  | "float" -> (
      match float_of_string_opt (String.trim text) with
      | Some f -> Value.Float f
      | None -> Value.String text)
  | "bool" -> Value.Bool (String.trim text = "true")
  | "null" -> Value.Null
  | "url" -> Value.Url text
  | ty -> (
      match Value.file_kind_of_name ty with
      | Some k -> Value.File (k, text)
      | None -> Value.File (Value.Other_file ty, text))

let import_into (g : Graph.t) (src : string) : unit =
  let root = parse_element src in
  if root.tag <> "graph" then
    raise (Xml_error ("root element must be <graph>", 1));
  let objects =
    List.filter_map
      (function
        | Element e when e.tag = "object" -> Some e
        | Element _ | Text _ -> None)
      root.children
  in
  (* first pass: create oids so refs resolve across objects *)
  let ids = Hashtbl.create 64 in
  List.iteri
    (fun i e ->
      let id =
        match List.assoc_opt "id" e.attrs with
        | Some id -> id
        | None -> Printf.sprintf "xmlobj%d" i
      in
      let o =
        match Graph.find_node g id with
        | Some o -> o
        | None -> Oid.fresh id
      in
      Hashtbl.replace ids id o)
    objects;
  List.iteri
    (fun i e ->
      let id =
        match List.assoc_opt "id" e.attrs with
        | Some id -> id
        | None -> Printf.sprintf "xmlobj%d" i
      in
      let o = Hashtbl.find ids id in
      Graph.add_node g o;
      (match List.assoc_opt "in" e.attrs with
       | Some colls ->
         List.iter
           (fun c -> if c <> "" then Graph.add_to_collection g c o)
           (String.split_on_char ' ' colls)
       | None -> ());
      List.iter
        (function
          | Text _ -> ()
          | Element a ->
            let label =
              if a.tag = "attr" then
                match List.assoc_opt "name" a.attrs with
                | Some n -> n
                | None -> raise (Xml_error ("<attr> without name", 1))
              else a.tag
            in
            (match List.assoc_opt "ref" a.attrs with
             | Some refid -> (
                 match Hashtbl.find_opt ids refid with
                 | Some o' -> Graph.add_edge g o label (Graph.N o')
                 | None -> (
                     match Graph.find_node g refid with
                     | Some o' -> Graph.add_edge g o label (Graph.N o')
                     | None ->
                       raise
                         (Xml_error ("unknown object reference " ^ refid, 1))))
             | None ->
               let ty =
                 match List.assoc_opt "type" a.attrs with
                 | Some t -> t
                 | None -> "string"
               in
               Graph.add_edge g o label
                 (Graph.V (value_of ~ty ~text:(text_of_element a)))))
        e.children)
    objects

let import ?graph_name src =
  let name =
    match graph_name with
    | Some n -> n
    | None -> (
        (* default to the document's own name attribute *)
        match List.assoc_opt "name" (parse_element src).attrs with
        | Some n -> n
        | None -> "g")
  in
  let g = Graph.create ~name () in
  import_into g src;
  g

(* --- Generic XML wrapper --- *)

let wrap_document ?(collection = "Documents") (g : Graph.t) ~name
    (root : element) : Oid.t =
  let counter = ref 0 in
  let rec load parent_name (e : element) : Oid.t =
    incr counter;
    let o = Graph.new_node g (Printf.sprintf "%s#%d" parent_name !counter) in
    Graph.add_edge g o "tag" (Graph.V (Value.String e.tag));
    List.iter
      (fun (k, v) ->
        Graph.add_edge g o ("@" ^ k) (Graph.V (Value.of_literal v)))
      e.attrs;
    let text = String.trim (text_of_element e) in
    if text <> "" then Graph.add_edge g o "text" (Graph.V (Value.String text));
    List.iter
      (function
        | Element child ->
          Graph.add_edge g o "child" (Graph.N (load parent_name child))
        | Text _ -> ())
      e.children;
    o
  in
  let root_obj = load name root in
  Graph.add_to_collection g collection root_obj;
  root_obj
