type target =
  | N of Oid.t
  | V of Value.t

let target_equal a b =
  match a, b with
  | N x, N y -> Oid.equal x y
  | V x, V y -> Value.equal x y
  | N _, V _ | V _, N _ -> false

let target_compare a b =
  match a, b with
  | N x, N y -> Oid.compare x y
  | V x, V y -> Value.compare x y
  | N _, V _ -> -1
  | V _, N _ -> 1

let pp_target ppf = function
  | N o -> Oid.pp_name ppf o
  | V v -> Value.pp ppf v

(* Hashable key for a target: oids hash by id, values structurally. *)
type tkey = Knode of int | Kval of Value.t

let tkey = function N o -> Knode (Oid.id o) | V v -> Kval v

type coll = { mutable set : Oid.Set.t; mutable order_rev : Oid.t list }

type t = {
  gname : string;
  use_index : bool;
  mutable nodes : Oid.Set.t;
  mutable node_order_rev : Oid.t list;
  out_tbl : (string * target) list ref Oid.Tbl.t;  (* reversed order *)
  edge_set : (int * string * tkey, unit) Hashtbl.t;
  colls : (string, coll) Hashtbl.t;
  mutable coll_order_rev : string list;
  names : (string, Oid.t) Hashtbl.t;
  (* indexes, maintained only when [use_index] *)
  label_idx : (string, (Oid.t * target) list ref) Hashtbl.t;
  value_idx : (Value.t, (Oid.t * string) list ref) Hashtbl.t;
  in_idx : (Oid.t * string) list ref Oid.Tbl.t;
  mutable label_order_rev : string list;  (* labels in first-seen order *)
  label_seen : (string, unit) Hashtbl.t;
  mutable n_edges : int;
}

let create ?(indexed = true) ?(name = "g") () =
  {
    gname = name;
    use_index = indexed;
    nodes = Oid.Set.empty;
    node_order_rev = [];
    out_tbl = Oid.Tbl.create 64;
    edge_set = Hashtbl.create 128;
    colls = Hashtbl.create 8;
    coll_order_rev = [];
    names = Hashtbl.create 64;
    label_idx = Hashtbl.create 32;
    value_idx = Hashtbl.create 128;
    in_idx = Oid.Tbl.create 64;
    label_order_rev = [];
    label_seen = Hashtbl.create 32;
    n_edges = 0;
  }

let name g = g.gname
let indexed g = g.use_index

let add_node g o =
  if not (Oid.Set.mem o g.nodes) then begin
    g.nodes <- Oid.Set.add o g.nodes;
    g.node_order_rev <- o :: g.node_order_rev;
    if not (Hashtbl.mem g.names (Oid.name o)) then
      Hashtbl.add g.names (Oid.name o) o
  end

let new_node g hint =
  let o = Oid.fresh hint in
  add_node g o;
  o

let mem_node g o = Oid.Set.mem o g.nodes
let nodes g = List.rev g.node_order_rev
let node_set g = g.nodes
let node_count g = Oid.Set.cardinal g.nodes
let find_node g n = Hashtbl.find_opt g.names n

let note_label g l =
  if not (Hashtbl.mem g.label_seen l) then begin
    Hashtbl.add g.label_seen l ();
    g.label_order_rev <- l :: g.label_order_rev
  end

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

let has_edge g src l tgt = Hashtbl.mem g.edge_set (Oid.id src, l, tkey tgt)

let add_edge g src l tgt =
  if not (has_edge g src l tgt) then begin
    add_node g src;
    (match tgt with N o -> add_node g o | V _ -> ());
    Hashtbl.replace g.edge_set (Oid.id src, l, tkey tgt) ();
    (match Oid.Tbl.find_opt g.out_tbl src with
     | Some r -> r := (l, tgt) :: !r
     | None -> Oid.Tbl.add g.out_tbl src (ref [ (l, tgt) ]));
    note_label g l;
    g.n_edges <- g.n_edges + 1;
    if g.use_index then begin
      push g.label_idx l (src, tgt);
      match tgt with
      | V v -> push g.value_idx v (src, l)
      | N o ->
        (match Oid.Tbl.find_opt g.in_idx o with
         | Some r -> r := (src, l) :: !r
         | None -> Oid.Tbl.add g.in_idx o (ref [ (src, l) ]))
    end
  end

let remove_assoc_edge r pred = r := List.filter (fun e -> not (pred e)) !r

let remove_edge g src l tgt =
  if has_edge g src l tgt then begin
    Hashtbl.remove g.edge_set (Oid.id src, l, tkey tgt);
    (match Oid.Tbl.find_opt g.out_tbl src with
     | Some r ->
       remove_assoc_edge r (fun (l', t') -> l' = l && target_equal t' tgt)
     | None -> ());
    g.n_edges <- g.n_edges - 1;
    if g.use_index then begin
      (match Hashtbl.find_opt g.label_idx l with
       | Some r ->
         remove_assoc_edge r (fun (s', t') ->
             Oid.equal s' src && target_equal t' tgt)
       | None -> ());
      match tgt with
      | V v ->
        (match Hashtbl.find_opt g.value_idx v with
         | Some r ->
           remove_assoc_edge r (fun (s', l') -> Oid.equal s' src && l' = l)
         | None -> ())
      | N o ->
        (match Oid.Tbl.find_opt g.in_idx o with
         | Some r ->
           remove_assoc_edge r (fun (s', l') -> Oid.equal s' src && l' = l)
         | None -> ())
    end
  end

let edge_count g = g.n_edges

let out_edges g o =
  match Oid.Tbl.find_opt g.out_tbl o with
  | Some r -> List.rev !r
  | None -> []

let iter_edges f g =
  List.iter
    (fun src -> List.iter (fun (l, tgt) -> f src l tgt) (out_edges g src))
    (nodes g)

let fold_edges f g init =
  List.fold_left
    (fun acc src ->
      List.fold_left (fun acc (l, tgt) -> f src l tgt acc) acc (out_edges g src))
    init (nodes g)

let in_edges g tgt =
  if g.use_index then
    match tgt with
    | N o ->
      (match Oid.Tbl.find_opt g.in_idx o with
       | Some r -> List.rev !r
       | None -> [])
    | V v ->
      (match Hashtbl.find_opt g.value_idx v with
       | Some r -> List.rev !r
       | None -> [])
  else
    fold_edges
      (fun src l t acc -> if target_equal t tgt then (src, l) :: acc else acc)
      g []
    |> List.rev

let attr g o l =
  List.filter_map
    (fun (l', tgt) -> if l' = l then Some tgt else None)
    (out_edges g o)

let attr1 g o l =
  let rec first = function
    | [] -> None
    | (l', tgt) :: rest -> if l' = l then Some tgt else first rest
  in
  first (out_edges g o)

let attr_value g o l =
  let rec first = function
    | [] -> None
    | (l', V v) :: _ when l' = l -> Some v
    | _ :: rest -> first rest
  in
  first (out_edges g o)

let find_coll g c = Hashtbl.find_opt g.colls c

let add_to_collection g c o =
  add_node g o;
  match find_coll g c with
  | Some coll ->
    if not (Oid.Set.mem o coll.set) then begin
      coll.set <- Oid.Set.add o coll.set;
      coll.order_rev <- o :: coll.order_rev
    end
  | None ->
    Hashtbl.add g.colls c { set = Oid.Set.singleton o; order_rev = [ o ] };
    g.coll_order_rev <- c :: g.coll_order_rev

let remove_from_collection g c o =
  match find_coll g c with
  | Some coll when Oid.Set.mem o coll.set ->
    coll.set <- Oid.Set.remove o coll.set;
    coll.order_rev <- List.filter (fun x -> not (Oid.equal x o)) coll.order_rev
  | _ -> ()

let in_collection g c o =
  match find_coll g c with Some coll -> Oid.Set.mem o coll.set | None -> false

let collection g c =
  match find_coll g c with Some coll -> List.rev coll.order_rev | None -> []

let collection_size g c =
  match find_coll g c with Some coll -> Oid.Set.cardinal coll.set | None -> 0

let collections g = List.rev g.coll_order_rev

let collections_of g o =
  List.filter (fun c -> in_collection g c o) (collections g)

let labels g = List.rev g.label_order_rev

let label_extent g l =
  if g.use_index then
    match Hashtbl.find_opt g.label_idx l with
    | Some r -> List.rev !r
    | None -> []
  else
    fold_edges
      (fun src l' tgt acc -> if l' = l then (src, tgt) :: acc else acc)
      g []
    |> List.rev

let label_count g l =
  if g.use_index then
    match Hashtbl.find_opt g.label_idx l with
    | Some r -> List.length !r
    | None -> 0
  else List.length (label_extent g l)

let value_index g v =
  if g.use_index then
    match Hashtbl.find_opt g.value_idx v with
    | Some r -> List.rev !r
    | None -> []
  else
    fold_edges
      (fun src l tgt acc ->
        match tgt with
        | V v' when Value.equal v v' -> (src, l) :: acc
        | _ -> acc)
      g []
    |> List.rev

let merge_into ~dst ~src =
  List.iter (fun o -> add_node dst o) (nodes src);
  iter_edges (fun s l t -> add_edge dst s l t) src;
  List.iter
    (fun c -> List.iter (fun o -> add_to_collection dst c o) (collection src c))
    (collections src)

let copy ?name g =
  let name = match name with Some n -> n | None -> g.gname in
  let g' = create ~indexed:g.use_index ~name () in
  merge_into ~dst:g' ~src:g;
  g'

let pp_stats ppf g =
  Fmt.pf ppf "graph %s: %d nodes, %d edges, %d collections, %d labels"
    g.gname (node_count g) g.n_edges
    (List.length (collections g))
    (List.length (labels g))
