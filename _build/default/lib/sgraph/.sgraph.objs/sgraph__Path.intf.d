lib/sgraph/path.mli: Format Graph Oid
