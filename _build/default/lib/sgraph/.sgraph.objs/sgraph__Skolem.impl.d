lib/sgraph/skolem.ml: Hashtbl List Oid String Value
