lib/sgraph/algo.ml: Graph List Oid Queue
