lib/sgraph/skolem.mli: Oid Value
