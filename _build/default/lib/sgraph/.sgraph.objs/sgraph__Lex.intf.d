lib/sgraph/lex.mli: Format
