lib/sgraph/oid.mli: Format Hashtbl Map Set
