lib/sgraph/xml.ml: Buffer Char Graph Hashtbl List Oid Printf String Value
