lib/sgraph/ddl.ml: Buffer Fmt Graph Hashtbl Lex List Oid Printf String Value
