lib/sgraph/ddl.mli: Format Graph Value
