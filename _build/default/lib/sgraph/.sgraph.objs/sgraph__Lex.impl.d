lib/sgraph/lex.ml: Buffer Fmt Int List Printf String
