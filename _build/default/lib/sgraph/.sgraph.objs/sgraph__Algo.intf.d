lib/sgraph/algo.mli: Graph Oid
