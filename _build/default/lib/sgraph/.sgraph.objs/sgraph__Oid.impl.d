lib/sgraph/oid.ml: Fmt Hashtbl Int Map Set
