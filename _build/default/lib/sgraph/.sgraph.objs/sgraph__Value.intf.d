lib/sgraph/value.mli: Format
