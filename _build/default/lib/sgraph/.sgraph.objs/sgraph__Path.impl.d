lib/sgraph/path.ml: Array Either Fmt Graph Hashtbl List Oid Queue Value
