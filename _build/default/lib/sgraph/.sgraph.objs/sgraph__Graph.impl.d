lib/sgraph/graph.ml: Fmt Hashtbl List Oid Value
