lib/sgraph/graph.mli: Format Oid Value
