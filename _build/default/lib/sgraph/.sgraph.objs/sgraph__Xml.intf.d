lib/sgraph/xml.mli: Graph Oid
