lib/sgraph/value.ml: Buffer Float Fmt List Printf Stdlib String
