type arg =
  | A_oid of Oid.t
  | A_val of Value.t
  | A_label of string

(* Arguments are keyed structurally; oids by their numeric id. *)
type key_arg = K_oid of int | K_val of Value.t | K_label of string

let key_of_arg = function
  | A_oid o -> K_oid (Oid.id o)
  | A_val v -> K_val v
  | A_label l -> K_label l

type t = {
  table : (string * key_arg list, Oid.t) Hashtbl.t;
  by_fn : (string, Oid.t list ref) Hashtbl.t;
  inverse : (string * arg list) Oid.Tbl.t;
  mutable fns_rev : string list;
}

let create () =
  {
    table = Hashtbl.create 256;
    by_fn = Hashtbl.create 16;
    inverse = Oid.Tbl.create 256;
    fns_rev = [];
  }

let arg_name = function
  | A_oid o -> Oid.name o
  | A_val v -> Value.to_display_string v
  | A_label l -> l

let term_name f args = f ^ "(" ^ String.concat "," (List.map arg_name args) ^ ")"

let apply t f args =
  let key = (f, List.map key_of_arg args) in
  match Hashtbl.find_opt t.table key with
  | Some o -> (o, false)
  | None ->
    let o = Oid.fresh (term_name f args) in
    Hashtbl.add t.table key o;
    Oid.Tbl.add t.inverse o (f, args);
    (match Hashtbl.find_opt t.by_fn f with
     | Some r -> r := o :: !r
     | None ->
       Hashtbl.add t.by_fn f (ref [ o ]);
       t.fns_rev <- f :: t.fns_rev);
    (o, true)

let find t f args = Hashtbl.find_opt t.table (f, List.map key_of_arg args)
let functions t = List.rev t.fns_rev

let created t f =
  match Hashtbl.find_opt t.by_fn f with Some r -> List.rev !r | None -> []

let size t = Hashtbl.length t.table
let term_of t o = Oid.Tbl.find_opt t.inverse o
