(** Skolem functions for the construction stage of StruQL.

    By definition, a Skolem function applied to the same inputs produces
    the same node oid — [YearPage(1997)] always denotes one object
    within a construction scope.  A scope is shared by all the queries
    that build one site graph, so composed queries agree on the objects
    they create. *)

type t
(** A Skolem scope: the memo table from (function name, arguments) to
    created oids. *)

type arg =
  | A_oid of Oid.t
  | A_val of Value.t
  | A_label of string

val create : unit -> t

val apply : t -> string -> arg list -> Oid.t * bool
(** [apply scope f args] returns the oid for the Skolem term
    [f(args)], creating it on first use.  The boolean is [true] when
    the oid was created by this call. *)

val find : t -> string -> arg list -> Oid.t option
(** The oid for the term if it has been created already. *)

val term_name : string -> arg list -> string
(** Printable form of the Skolem term, e.g. ["YearPage(1997)"]. *)

val functions : t -> string list
(** All Skolem function names used in this scope so far. *)

val created : t -> string -> Oid.t list
(** All oids created by the given function, in creation order. *)

val size : t -> int

val term_of : t -> Oid.t -> (string * arg list) option
(** The Skolem term that created the oid, if it was created in this
    scope — the inverse of {!apply}.  Used by the click-time evaluator
    to rebind a page's defining variables. *)
