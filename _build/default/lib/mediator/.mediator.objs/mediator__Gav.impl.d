lib/mediator/gav.ml: Ast Eval Graph Lazy List Parser Printf Sgraph Skolem Source Struql
