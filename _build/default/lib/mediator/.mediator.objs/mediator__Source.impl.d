lib/mediator/source.ml: Graph Sgraph
