lib/mediator/source.mli: Graph Sgraph
