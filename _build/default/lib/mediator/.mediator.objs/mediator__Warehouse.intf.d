lib/mediator/warehouse.mli: Gav Graph Sgraph Source Struql
