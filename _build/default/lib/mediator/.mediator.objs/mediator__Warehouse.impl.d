lib/mediator/warehouse.ml: Gav Graph List Sgraph Source Struql
