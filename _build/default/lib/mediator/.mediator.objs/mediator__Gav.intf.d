lib/mediator/gav.mli: Graph Sgraph Source Struql
