(** The warehousing mediator (§2.3).

    STRUDEL's prototype materializes the integrated view: data from all
    sources is loaded into the repository and queries run against the
    warehouse.  The warehouse tracks per-source versions; {!refresh}
    re-integrates when any source changed, serving unchanged sources
    from their wrapper caches. *)

open Sgraph

type t

val create :
  ?options:Struql.Eval.options ->
  sources:Source.t list ->
  mappings:Gav.mapping list ->
  unit ->
  t
(** Builds the initial integration. *)

val graph : t -> Graph.t
(** The current mediated graph. *)

val stale : t -> bool
(** Whether any source changed since the last integration. *)

val refresh : t -> bool
(** Re-integrate if stale; returns whether a rebuild happened. *)

val refresh_count : t -> int
(** Number of integrations performed (including the initial one). *)

val find_source : t -> string -> Source.t option
