(** Data-source abstraction for the mediator.

    A source wraps an external data set (a relational table, a BibTeX
    file, structured files, HTML pages) behind a loader producing a
    graph.  Sources carry a version counter so the warehouse detects
    staleness, and may declare {e limited access patterns} — inputs
    that must be bound before the source can be queried (§2.4), which
    the planner honours via [Plan.plan ~limited]. *)

open Sgraph

type access_pattern = {
  requires_bound : string list;
      (** attributes that must be bound to access the source *)
}

type t

val make : ?access:access_pattern -> name:string -> (unit -> Graph.t) -> t
val of_graph : ?access:access_pattern -> name:string -> Graph.t -> t

val name : t -> string
val version : t -> int

val update : t -> (unit -> Graph.t) -> unit
(** Replace the source's contents (a new export arrived); bumps the
    version so the warehouse knows to refresh. *)

val load : t -> Graph.t
(** Load through the per-version cache. *)

val requires_bound : t -> string list
