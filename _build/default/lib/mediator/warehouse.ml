(** The warehousing mediator (§2.3).

    STRUDEL's prototype materializes the integrated view: data from all
    sources is loaded into the repository, and queries run against the
    warehouse.  The warehouse tracks per-source versions; [refresh]
    re-integrates when any source changed.  Because mediation queries
    are monotone graph constructions, a changed source forces a rebuild
    of the mediated graph (the open problem of incremental view update
    for semistructured data, §6) — but unchanged sources are served
    from their wrapper caches, which is where the real cost sat. *)

open Sgraph

type t = {
  sources : Source.t list;
  mappings : Gav.mapping list;
  options : Struql.Eval.options;
  mutable graph : Graph.t;
  mutable seen_versions : (string * int) list;
  mutable refreshes : int;  (** number of integrations performed *)
}

let versions sources = List.map (fun s -> (Source.name s, Source.version s)) sources

let create ?(options = Struql.Eval.default_options) ~sources ~mappings () =
  let g = Gav.integrate ~options sources mappings in
  {
    sources;
    mappings;
    options;
    graph = g;
    seen_versions = versions sources;
    refreshes = 1;
  }

let graph w = w.graph
let refresh_count w = w.refreshes

let stale w = versions w.sources <> w.seen_versions

(** Re-integrate if any source changed; returns whether a rebuild
    happened. *)
let refresh w =
  if stale w then begin
    w.graph <- Gav.integrate ~options:w.options w.sources w.mappings;
    w.seen_versions <- versions w.sources;
    w.refreshes <- w.refreshes + 1;
    true
  end
  else false

let find_source w name =
  List.find_opt (fun s -> Source.name s = name) w.sources
