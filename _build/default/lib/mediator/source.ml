(** Data-source abstraction for the mediator.

    A source wraps an external data set (a relational table, a BibTeX
    file, structured files, HTML pages) behind a loader producing a
    graph.  Sources carry a version counter so the warehouse can detect
    staleness, and may declare {e limited access patterns} — attribute
    names that must be bound before the source can be queried, the
    situation §2.4 says is common for semistructured sources and that
    the cost-based optimizer must honour. *)

open Sgraph

type access_pattern = {
  requires_bound : string list;
      (** attributes that must be bound to access the source *)
}

type t = {
  name : string;
  mutable version : int;
  mutable loader : unit -> Graph.t;
  access : access_pattern option;
  mutable cached : (int * Graph.t) option;
}

let make ?access ~name loader =
  { name; version = 0; loader; access; cached = None }

let of_graph ?access ~name g = make ?access ~name (fun () -> g)

let name s = s.name
let version s = s.version

(** Replace the source's contents (a new export arrived); bumps the
    version so the warehouse knows to refresh. *)
let update s loader =
  s.loader <- loader;
  s.version <- s.version + 1

let load s =
  match s.cached with
  | Some (v, g) when v = s.version -> g
  | _ ->
    let g = s.loader () in
    s.cached <- Some (s.version, g);
    g

let requires_bound s =
  match s.access with Some a -> a.requires_bound | None -> []
