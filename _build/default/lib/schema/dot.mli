(** Graphviz (dot) export — the stand-in for the paper's visual
    site-schema viewer ("we built a tool to view a query's site
    schema, which provides a visual map of the site being
    specified"). *)

val of_graph : ?max_nodes:int -> Sgraph.Graph.t -> string
(** Dot rendering of a data/site graph: internal objects as ellipses,
    values as boxes, collections as dashed membership edges.  Truncated
    at [max_nodes] (default 500). *)

val of_schema : Site_schema.t -> string
(** Dot rendering of a site schema (Fig. 5). *)
