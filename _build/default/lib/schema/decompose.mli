(** Static decomposition of site-definition queries (§5.2, [FER 98c]):
    from the site schema, one self-contained StruQL query per unit of
    work — one per Skolem family's CREATE, one per link clause, one per
    collect clause.  Composing all pieces under a shared Skolem scope
    reproduces the original site graph exactly; any subset computes the
    corresponding fragment.  The dynamic counterpart is
    [Strudel.Materialize.Click_time]. *)

type piece = {
  piece_name : string;  (** e.g. ["create:YearPage"], ["link:3:..."] *)
  query : Struql.Ast.query;
}

val decompose : Site_schema.t -> piece list
val of_query : Struql.Ast.query -> piece list

val run_all :
  ?options:Struql.Eval.options ->
  piece list -> Sgraph.Graph.t -> Sgraph.Graph.t
(** Evaluate every piece under one Skolem scope; equals the original
    query's site graph. *)

val pp : Format.formatter -> piece list -> unit
