lib/schema/verify.ml: Algo Ast Fmt Graph List Oid Sgraph Site_schema String Struql
