lib/schema/site_schema.ml: Ast Fmt List Pretty Printf Sgraph String Struql
