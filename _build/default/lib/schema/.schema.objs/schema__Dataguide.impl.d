lib/schema/dataguide.ml: Fmt Graph Hashtbl List Oid Printf Queue Sgraph String
