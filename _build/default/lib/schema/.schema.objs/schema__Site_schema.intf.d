lib/schema/site_schema.mli: Ast Format Struql
