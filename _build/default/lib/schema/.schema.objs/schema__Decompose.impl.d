lib/schema/decompose.ml: Ast Eval Fmt List Pretty Printf Sgraph Site_schema Struql
