lib/schema/dot.mli: Sgraph Site_schema
