lib/schema/dataguide.mli: Format Graph Oid Sgraph
