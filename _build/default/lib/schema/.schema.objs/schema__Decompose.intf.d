lib/schema/decompose.mli: Format Sgraph Site_schema Struql
