lib/schema/verify.mli: Format Graph Oid Sgraph Site_schema
