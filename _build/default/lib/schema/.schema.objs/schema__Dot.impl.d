lib/schema/dot.ml: Buffer Fmt Graph List Oid Printf Sgraph Site_schema String Value
