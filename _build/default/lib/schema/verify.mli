(** Integrity constraints on site structure (§1, [FER 98b]).

    Constraints like "all pages are reachable from the root", "every
    organization homepage points to the homepages of its
    suborganizations" or "proprietary data is not displayed on the
    external version" are checked two ways: {e statically} on the site
    schema (a sound approximation — the schema describes the possible
    paths of every site the query can generate), and {e exactly} on a
    concrete site graph, where Skolem families are recovered from node
    names. *)

open Sgraph

type constraint_ =
  | Reachable_from of string
      (** every object of the site is reachable from the family's pages *)
  | Points_to of string * string * string
      (** [Points_to (a, l, b)]: every [a]-page has an [l]-edge to some
          [b]-page *)
  | No_edge of string * string
      (** [No_edge (a, l)]: no [a]-page carries an [l]-edge *)
  | No_attribute_anywhere of string
      (** the label never appears in the site (proprietary data) *)
  | Acyclic_links of string
      (** edges with the given label form no cycle *)

val pp_constraint : Format.formatter -> constraint_ -> unit

type verdict =
  | Holds
  | Violated of string list  (** human-readable witnesses *)
  | Unknown of string        (** static analysis cannot decide *)

val pp_verdict : Format.formatter -> verdict -> unit

val check_schema : Site_schema.t -> constraint_ -> verdict
(** Static check: [Violated] here rules out every instance;
    [Unknown] means the verdict depends on the data. *)

val family_of_node : Oid.t -> string option
(** The Skolem family recovered from a node name
    (["YearPage(1997)"] → ["YearPage"]). *)

val family_members : Graph.t -> string -> Oid.t list

val check_site : Graph.t -> constraint_ -> verdict
(** Exact check on a generated site graph. *)

val check_all_site :
  Graph.t -> constraint_ list -> (constraint_ * verdict) list

val check_all_schema :
  Site_schema.t -> constraint_ list -> (constraint_ * verdict) list
