(** Static decomposition of site-definition queries (§5.2, [FER 98c]).

    "S TRU QL's declarative semantics allow us to ... automatically
    convert a complete site-definition query into multiple queries
    [that] can be evaluated statically or dynamically at 'click time'."

    This module produces the {e static} decomposition: from the site
    schema, one self-contained StruQL query per unit of work — one per
    Skolem family's CREATE, one per link clause, one per collect
    clause.  Each piece is a complete, independently evaluable query;
    composing all pieces under a shared Skolem scope reproduces the
    original site graph exactly (tested), and any subset computes the
    corresponding fragment — the basis for evaluating parts of a site
    on different schedules.  The {e dynamic} counterpart — binding a
    clicked node's Skolem arguments and evaluating just its outgoing
    link clauses — is {!Strudel.Materialize.Click_time}. *)

open Struql

type piece = {
  piece_name : string;  (** e.g. ["create:YearPage"], ["link:3"] *)
  query : Ast.query;
}

(* A complete query must CREATE every Skolem function it links from or
   to, so each piece re-states the creates it depends on (Skolem
   semantics make re-creation idempotent under a shared scope). *)
let rec term_creates (t : Ast.term) : Ast.create_clause list =
  match t with
  | Ast.T_skolem (f, args) ->
    ((f, args) :: List.concat_map term_creates args)
  | Ast.T_var _ | Ast.T_const _ -> []
  | Ast.T_agg (_, inner) -> term_creates inner

let decompose (s : Site_schema.t) : piece list =
  let input = s.Site_schema.input and output = s.Site_schema.output in
  let mk name where create link collect =
    {
      piece_name = name;
      query =
        {
          Ast.input;
          blocks = [ { Ast.where; create; link; collect; nested = [] } ];
          output;
        };
    }
  in
  let creates =
    List.map
      (fun (k : Site_schema.create_info) ->
        mk ("create:" ^ k.k_fn) k.k_conds [ (k.k_fn, k.k_args) ] [] [])
      s.Site_schema.creates
  in
  let links =
    List.mapi
      (fun i (e : Site_schema.edge) ->
        let src = Ast.T_skolem (Site_schema.node_name e.src, e.src_args) in
        let dst =
          match e.dst with
          | Site_schema.NF g -> Ast.T_skolem (g, e.dst_args)
          | Site_schema.NS -> (
              match e.dst_args with
              | [ t ] -> t
              | _ -> Ast.T_const Sgraph.Value.Null)
        in
        let create =
          (* deduplicated creates for both endpoints *)
          List.sort_uniq compare (term_creates src @ term_creates dst)
        in
        mk
          (Printf.sprintf "link:%d:%s-%s" i
             (Site_schema.node_name e.src)
             (Site_schema.node_name e.dst))
          e.conds create
          [ (src, e.label, dst) ]
          [])
      s.Site_schema.edges
  in
  let collects =
    List.mapi
      (fun i (c : Site_schema.collect_info) ->
        mk
          (Printf.sprintf "collect:%d:%s" i c.c_name)
          c.c_conds
          (List.sort_uniq compare (term_creates c.c_term))
          []
          [ (c.c_name, c.c_term) ])
      s.Site_schema.collects
  in
  creates @ links @ collects

let of_query q = decompose (Site_schema.of_query q)

(** Evaluate every piece under one Skolem scope; the result equals the
    original query's site graph. *)
let run_all ?(options = Eval.default_options) (pieces : piece list)
    (data : Sgraph.Graph.t) : Sgraph.Graph.t =
  let scope = Sgraph.Skolem.create () in
  let out =
    Sgraph.Graph.create
      ~name:(match pieces with p :: _ -> p.query.Ast.output | [] -> "out")
      ()
  in
  List.iter
    (fun p -> ignore (Eval.run ~options ~scope ~into:out data p.query))
    pieces;
  out

let pp ppf (pieces : piece list) =
  List.iter
    (fun p ->
      Fmt.pf ppf "-- %s@.%s@." p.piece_name (Pretty.to_string p.query))
    pieces
