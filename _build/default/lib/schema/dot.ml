(** Graphviz (dot) export — the stand-in for the paper's visual
    site-schema viewer ("we built a tool to view a query's site schema,
    which provides a visual map of the site being specified"). *)

open Sgraph

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Dot rendering of a data/site graph.  Values are rendered as boxes,
    internal objects as ellipses; collections become dashed membership
    edges from a collection node. *)
let of_graph ?(max_nodes = 500) (g : Graph.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph G {\n  rankdir=LR;\n";
  let nodes = Graph.nodes g in
  let shown = List.filteri (fun i _ -> i < max_nodes) nodes in
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" (Oid.id o)
           (escape (Oid.name o))))
    shown;
  let vcount = ref 0 in
  List.iter
    (fun o ->
      List.iter
        (fun (l, tgt) ->
          match tgt with
          | Graph.N o' ->
            if List.exists (Oid.equal o') shown then
              Buffer.add_string buf
                (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" (Oid.id o)
                   (Oid.id o') (escape l))
          | Graph.V v ->
            incr vcount;
            Buffer.add_string buf
              (Printf.sprintf
                 "  v%d [shape=box, label=\"%s\"];\n  n%d -> v%d \
                  [label=\"%s\"];\n"
                 !vcount
                 (escape (Value.to_display_string v))
                 (Oid.id o) !vcount (escape l)))
        (Graph.out_edges g o))
    shown;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  c_%s [shape=folder, label=\"%s\"];\n" (escape c)
           (escape c));
      List.iter
        (fun o ->
          if List.exists (Oid.equal o) shown then
            Buffer.add_string buf
              (Printf.sprintf "  c_%s -> n%d [style=dashed];\n" (escape c)
                 (Oid.id o)))
        (Graph.collection g c))
    (Graph.collections g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Dot rendering of a site schema (Fig. 5). *)
let of_schema (s : Site_schema.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph SiteSchema {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
      match n with
      | Site_schema.NS ->
        Buffer.add_string buf "  NS [shape=box, style=dashed];\n"
      | Site_schema.NF f ->
        Buffer.add_string buf (Printf.sprintf "  %s [shape=ellipse];\n" f))
    (Site_schema.nodes s);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%s\"];\n"
           (Site_schema.node_name e.Site_schema.src)
           (Site_schema.node_name e.Site_schema.dst)
           (escape (Fmt.str "%a" Site_schema.pp_edge_label e))))
    (Site_schema.edges s);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
