(** Abstract syntax of StruQL (Site TRansformation Und Query Language).

    A query has the form

    {v
    INPUT G
      WHERE C1, ..., Ck
      CREATE N1, ..., Nn
      LINK L1, ..., Lp
      COLLECT G1, ..., Gq
      { nested blocks ... }
    OUTPUT R
    v}

    where the [WHERE] part produces all bindings of node and arc
    variables satisfying the conditions, and the construction part
    builds a new graph from that binding relation.  Blocks nest; a
    nested block's [WHERE] is conjoined with its ancestors'. *)

type var = string

(** Aggregation functions — the grouping/aggregation extension the
    paper names in §5.2 ("the query stage is independently extensible;
    for example, we could extend it to include grouping and
    aggregation").  An aggregate term may appear as a LINK target; the
    group is the set of binding rows that construct the same source
    node, and the aggregate ranges over the distinct values the inner
    term takes in that group. *)
type agg_fn = Count | Sum | Min | Max | Avg

let agg_name = function
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

let agg_of_name = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | "avg" -> Some Avg
  | _ -> None

(** Terms denote objects: variables, constants, Skolem terms, or
    aggregates (the latter two only in construction clauses). *)
type term =
  | T_var of var
  | T_const of Sgraph.Value.t
  | T_skolem of string * term list
  | T_agg of agg_fn * term

(** Edge labels in single-edge conditions and link clauses. *)
type label_term =
  | L_var of var       (** an arc variable, binds the label *)
  | L_const of string  (** a literal label, ["Paper"] *)

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type condition =
  | C_atom of string * term list
      (** [Name(t1, ..., tn)] — collection membership or an external
          predicate; the distinction is semantic, resolved against the
          registry and the graph at planning time. *)
  | C_edge of term * label_term * term  (** [x -> l -> y], single edge *)
  | C_path of term * Sgraph.Path.t * term
      (** [x -> R -> y], regular path expression *)
  | C_cmp of cmp_op * term * term
  | C_in of term * Sgraph.Value.t list  (** [l in {"a", "b"}] *)
  | C_not of condition

(* construction clauses: Skolem application, edge addition, collection *)
type create_clause = string * term list
type link_clause = term * label_term * term
type collect_clause = string * term

type block = {
  where : condition list;
  create : create_clause list;
  link : link_clause list;
  collect : collect_clause list;
  nested : block list;
}

type query = {
  input : string list;
  blocks : block list;
  output : string;
}

let empty_block =
  { where = []; create = []; link = []; collect = []; nested = [] }

let query ?(input = [ "input" ]) ?(output = "output") blocks =
  { input; blocks; output }

(* --- Variable accounting --- *)

let rec term_vars acc = function
  | T_var v -> v :: acc
  | T_const _ -> acc
  | T_skolem (_, args) -> List.fold_left term_vars acc args
  | T_agg (_, t) -> term_vars acc t

let label_vars acc = function L_var v -> v :: acc | L_const _ -> acc

let rec condition_vars acc = function
  | C_atom (_, ts) -> List.fold_left term_vars acc ts
  | C_edge (x, l, y) -> label_vars (term_vars (term_vars acc x) y) l
  | C_path (x, _, y) -> term_vars (term_vars acc x) y
  | C_cmp (_, a, b) -> term_vars (term_vars acc a) b
  | C_in (t, _) -> term_vars acc t
  | C_not c -> condition_vars acc c

(** Variables bound positively by a condition (generators): atoms,
    edges and paths bind their variables; [=] against a constant binds;
    negation binds nothing. *)
let positive_vars acc = function
  | C_atom (_, ts) -> List.fold_left term_vars acc ts
  | C_edge (x, l, y) -> label_vars (term_vars (term_vars acc x) y) l
  | C_path (x, _, y) -> term_vars (term_vars acc x) y
  | C_cmp (Eq, T_var v, T_const _) | C_cmp (Eq, T_const _, T_var v) ->
    v :: acc
  | C_in (T_var v, _) -> v :: acc
  | C_cmp _ | C_in _ | C_not _ -> acc

let dedup vars = List.sort_uniq String.compare vars

let block_where_vars b = dedup (List.fold_left condition_vars [] b.where)

let rec block_all_vars b =
  let acc = List.fold_left condition_vars [] b.where in
  let acc =
    List.fold_left (fun acc (_, ts) -> List.fold_left term_vars acc ts) acc
      b.create
  in
  let acc =
    List.fold_left
      (fun acc (x, l, y) -> label_vars (term_vars (term_vars acc x) y) l)
      acc b.link
  in
  let acc = List.fold_left (fun acc (_, t) -> term_vars acc t) acc b.collect in
  let nested_vars = List.concat_map (fun b -> block_all_vars b) b.nested in
  dedup (nested_vars @ acc)

(** All Skolem function names used in [create] clauses, including nested
    blocks. *)
let rec created_skolems b =
  let own = List.map fst b.create in
  dedup (own @ List.concat_map created_skolems b.nested)

let query_created_skolems q = dedup (List.concat_map created_skolems q.blocks)

let rec term_skolems acc = function
  | T_var _ | T_const _ -> acc
  | T_skolem (f, args) -> List.fold_left term_skolems (f :: acc) args
  | T_agg (_, t) -> term_skolems acc t

(** Skolem functions referenced anywhere in construction clauses. *)
let rec used_skolems b =
  let acc = List.fold_left (fun acc (f, ts) ->
      List.fold_left term_skolems (f :: acc) ts)
      [] b.create
  in
  let acc =
    List.fold_left
      (fun acc (x, _, y) -> term_skolems (term_skolems acc x) y)
      acc b.link
  in
  let acc = List.fold_left (fun acc (_, t) -> term_skolems acc t) acc b.collect in
  dedup (acc @ List.concat_map used_skolems b.nested)

let query_used_skolems q = dedup (List.concat_map used_skolems q.blocks)

(** Number of link clauses — the paper's measure of a site's structural
    complexity. *)
let rec block_link_count b =
  List.length b.link + List.fold_left (fun n b -> n + block_link_count b) 0 b.nested

let query_link_count q =
  List.fold_left (fun n b -> n + block_link_count b) 0 q.blocks

let rec block_condition_count b =
  List.length b.where
  + List.fold_left (fun n b -> n + block_condition_count b) 0 b.nested

let query_condition_count q =
  List.fold_left (fun n b -> n + block_condition_count b) 0 q.blocks
