(** Pretty-printer for StruQL.  Output re-parses to the same query
    ([Parser.parse (to_string q)] is structurally equal to [q], with
    label predicates compared by name). *)

open Sgraph

let pp_value = Value.pp

let rec pp_term ppf = function
  | Ast.T_var v -> Fmt.string ppf v
  | Ast.T_const c -> pp_value ppf c
  | Ast.T_skolem (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_term) args
  | Ast.T_agg (fn, t) -> Fmt.pf ppf "%s(%a)" (Ast.agg_name fn) pp_term t

let pp_label_term ppf = function
  | Ast.L_var v -> Fmt.string ppf v
  | Ast.L_const s -> Fmt.pf ppf "%S" s

let pp_cmp_op ppf op =
  Fmt.string ppf
    (match op with
     | Ast.Eq -> "="
     | Ast.Ne -> "!="
     | Ast.Lt -> "<"
     | Ast.Le -> "<="
     | Ast.Gt -> ">"
     | Ast.Ge -> ">=")

let rec pp_condition ppf = function
  | Ast.C_atom (name, args) ->
    Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp_term) args
  | Ast.C_edge (x, l, y) ->
    Fmt.pf ppf "%a -> %a -> %a" pp_term x pp_label_term l pp_term y
  | Ast.C_path (x, r, y) ->
    Fmt.pf ppf "%a -> %a -> %a" pp_term x Path.pp r pp_term y
  | Ast.C_cmp (op, a, b) ->
    Fmt.pf ppf "%a %a %a" pp_term a pp_cmp_op op pp_term b
  | Ast.C_in (t, vs) ->
    Fmt.pf ppf "%a in {%a}" pp_term t Fmt.(list ~sep:(any ", ") pp_value) vs
  | Ast.C_not c -> Fmt.pf ppf "not(%a)" pp_condition c

let pp_link ppf (x, l, y) =
  Fmt.pf ppf "%a -> %a -> %a" pp_term x pp_label_term l pp_term y

let pp_create ppf (f, args) = pp_term ppf (Ast.T_skolem (f, args))
let pp_collect ppf (c, t) = Fmt.pf ppf "%s(%a)" c pp_term t

let rec pp_block ?(indent = 0) ppf (b : Ast.block) =
  let pad = String.make indent ' ' in
  let section kw pp_item items =
    if items <> [] then
      Fmt.pf ppf "%s%s %a@\n" pad kw
        (Fmt.list
           ~sep:(fun ppf () -> Fmt.pf ppf ",@\n%s  " pad)
           pp_item)
        items
  in
  section "WHERE" pp_condition b.where;
  section "CREATE" pp_create b.create;
  section "LINK" pp_link b.link;
  section "COLLECT" pp_collect b.collect;
  List.iter
    (fun nested ->
      Fmt.pf ppf "%s{@\n%a%s}@\n" pad (pp_block ~indent:(indent + 2)) nested
        pad)
    b.nested

let pp_query ppf (q : Ast.query) =
  Fmt.pf ppf "INPUT %s@\n" (String.concat ", " q.input);
  List.iter (fun b -> Fmt.pf ppf "{@\n%a}@\n" (pp_block ~indent:2) b) q.blocks;
  Fmt.pf ppf "OUTPUT %s@\n" q.output

let to_string q = Fmt.str "%a" pp_query q
let condition_to_string c = Fmt.str "%a" pp_condition c

(* --- Structural equality, label predicates by name --- *)

let rec rpe_equal a b =
  match a, b with
  | Path.Epsilon, Path.Epsilon -> true
  | Path.Edge p, Path.Edge q -> pred_equal p q
  | Path.Seq (a1, a2), Path.Seq (b1, b2)
  | Path.Alt (a1, a2), Path.Alt (b1, b2) ->
    rpe_equal a1 b1 && rpe_equal a2 b2
  | Path.Star a, Path.Star b | Path.Plus a, Path.Plus b
  | Path.Opt a, Path.Opt b ->
    rpe_equal a b
  | _ -> false

and pred_equal p q =
  match p, q with
  | Path.Label a, Path.Label b -> a = b
  | Path.Any, Path.Any -> true
  | Path.Named_pred (a, _), Path.Named_pred (b, _) -> a = b
  | _ -> false

let rec term_equal a b =
  match a, b with
  | Ast.T_var x, Ast.T_var y -> x = y
  | Ast.T_const x, Ast.T_const y -> Value.equal x y
  | Ast.T_skolem (f, xs), Ast.T_skolem (g, ys) ->
    f = g && List.length xs = List.length ys && List.for_all2 term_equal xs ys
  | Ast.T_agg (f, x), Ast.T_agg (g, y) -> f = g && term_equal x y
  | _ -> false

let rec condition_equal a b =
  match a, b with
  | Ast.C_atom (n, xs), Ast.C_atom (m, ys) ->
    n = m && List.length xs = List.length ys && List.for_all2 term_equal xs ys
  | Ast.C_edge (x, l, y), Ast.C_edge (x', l', y') ->
    term_equal x x' && l = l' && term_equal y y'
  | Ast.C_path (x, r, y), Ast.C_path (x', r', y') ->
    term_equal x x' && rpe_equal r r' && term_equal y y'
  | Ast.C_cmp (o, a1, a2), Ast.C_cmp (o', b1, b2) ->
    o = o' && term_equal a1 b1 && term_equal a2 b2
  | Ast.C_in (t, vs), Ast.C_in (t', vs') ->
    term_equal t t'
    && List.length vs = List.length vs'
    && List.for_all2 Value.equal vs vs'
  | Ast.C_not a, Ast.C_not b -> condition_equal a b
  | _ -> false

let link_equal (x, l, y) (x', l', y') =
  term_equal x x' && l = l' && term_equal y y'

let rec block_equal (a : Ast.block) (b : Ast.block) =
  List.length a.where = List.length b.where
  && List.for_all2 condition_equal a.where b.where
  && List.length a.create = List.length b.create
  && List.for_all2
       (fun (f, xs) (g, ys) ->
         f = g
         && List.length xs = List.length ys
         && List.for_all2 term_equal xs ys)
       a.create b.create
  && List.length a.link = List.length b.link
  && List.for_all2 link_equal a.link b.link
  && List.length a.collect = List.length b.collect
  && List.for_all2
       (fun (c, t) (c', t') -> c = c' && term_equal t t')
       a.collect b.collect
  && List.length a.nested = List.length b.nested
  && List.for_all2 block_equal a.nested b.nested

let query_equal (a : Ast.query) (b : Ast.query) =
  a.input = b.input && a.output = b.output
  && List.length a.blocks = List.length b.blocks
  && List.for_all2 block_equal a.blocks b.blocks
