(** Static checks on StruQL queries.

    Enforces the paper's two semantic conditions — every node mentioned
    in [link] or [collect] is either created or comes from the data
    graph, and edges may only be added from newly created nodes — plus
    Skolem arity consistency, and classifies queries as range-restricted
    (safe) or merely active-domain-definable. *)

type problem =
  | Skolem_not_created of string
      (** a Skolem function used in link/collect has no create clause *)
  | Link_source_not_new of Ast.link_clause
      (** link source is an existing object — old nodes are immutable *)
  | Skolem_arity of string * int * int  (** function, arity1, arity2 *)
  | Skolem_in_where of string
  | Unsafe_variable of string
      (** variable used in construction or negation but not positively
          bound: the query is only active-domain definable *)
  | Agg_misplaced of string
      (** an aggregate term somewhere other than a LINK target *)

let pp_problem ppf = function
  | Skolem_not_created f ->
    Fmt.pf ppf "Skolem function %s is used in LINK/COLLECT but never CREATEd"
      f
  | Link_source_not_new (x, l, y) ->
    Fmt.pf ppf
      "LINK %a adds an edge from an existing object; existing nodes are \
       immutable"
      Pretty.pp_link (x, l, y)
  | Skolem_arity (f, a, b) ->
    Fmt.pf ppf "Skolem function %s is used with %d and with %d arguments" f a
      b
  | Skolem_in_where f ->
    Fmt.pf ppf "Skolem term %s(...) may not appear in a WHERE clause" f
  | Unsafe_variable v ->
    Fmt.pf ppf
      "variable %s is not bound by a positive condition; its bindings range \
       over the active domain"
      v
  | Agg_misplaced fn ->
    Fmt.pf ppf
      "aggregate %s(...) may only appear as a LINK target" fn

let rec term_skolem_arities acc = function
  | Ast.T_var _ | Ast.T_const _ -> acc
  | Ast.T_skolem (f, args) ->
    List.fold_left term_skolem_arities ((f, List.length args) :: acc) args
  | Ast.T_agg (_, t) -> term_skolem_arities acc t

(* Errors (hard violations) and warnings (safety classification). *)
type report = { errors : problem list; warnings : problem list }

let check (q : Ast.query) : report =
  let errors = ref [] in
  let warnings = ref [] in
  let created = Ast.query_created_skolems q in
  (* Skolem functions in where clauses *)
  let scan_where_term = function
    | Ast.T_var _ | Ast.T_const _ -> ()
    | Ast.T_skolem (f, _) -> errors := Skolem_in_where f :: !errors
    | Ast.T_agg (fn, _) -> errors := Agg_misplaced (Ast.agg_name fn) :: !errors
  in
  (* aggregates may only be the immediate target of a link clause *)
  let rec scan_no_agg = function
    | Ast.T_var _ | Ast.T_const _ -> ()
    | Ast.T_skolem (_, args) -> List.iter scan_no_agg args
    | Ast.T_agg (fn, _) -> errors := Agg_misplaced (Ast.agg_name fn) :: !errors
  in
  let rec scan_cond = function
    | Ast.C_atom (_, ts) -> List.iter scan_where_term ts
    | Ast.C_edge (x, _, y) | Ast.C_path (x, _, y) ->
      scan_where_term x;
      scan_where_term y
    | Ast.C_cmp (_, a, b) ->
      scan_where_term a;
      scan_where_term b
    | Ast.C_in (t, _) -> scan_where_term t
    | Ast.C_not c -> scan_cond c
  in
  (* arity consistency *)
  let arities = Hashtbl.create 16 in
  let note_arity (f, n) =
    match Hashtbl.find_opt arities f with
    | Some n' when n' <> n -> errors := Skolem_arity (f, n', n) :: !errors
    | Some _ -> ()
    | None -> Hashtbl.add arities f n
  in
  let rec scan_block bound (b : Ast.block) =
    List.iter scan_cond b.where;
    (* collect arities from all construction terms *)
    List.iter
      (fun (f, args) ->
        note_arity (f, List.length args);
        List.iter
          (fun t -> List.iter note_arity (term_skolem_arities [] t))
          args)
      b.create;
    List.iter
      (fun (x, _, y) ->
        List.iter note_arity (term_skolem_arities [] x);
        List.iter note_arity (term_skolem_arities [] y))
      b.link;
    List.iter
      (fun (_, t) -> List.iter note_arity (term_skolem_arities [] t))
      b.collect;
    (* aggregate placement: only the immediate target of a link *)
    List.iter (fun (_, args) -> List.iter scan_no_agg args) b.create;
    List.iter (fun (_, t) -> scan_no_agg t) b.collect;
    List.iter
      (fun (x, _, y) ->
        scan_no_agg x;
        match y with
        | Ast.T_agg (_, inner) -> scan_no_agg inner
        | y -> scan_no_agg y)
      b.link;
    (* link sources must be Skolem terms over created functions;
       referenced Skolem functions must be created somewhere *)
    List.iter
      (fun (x, l, y) ->
        (match x with
         | Ast.T_skolem (f, _) ->
           if not (List.mem f created) then
             errors := Skolem_not_created f :: !errors
         | Ast.T_var _ | Ast.T_const _ | Ast.T_agg _ ->
           errors := Link_source_not_new (x, l, y) :: !errors);
        List.iter
          (fun (f, _) ->
            if not (List.mem f created) then
              errors := Skolem_not_created f :: !errors)
          (match y with
           | Ast.T_skolem (f, args) -> [ (f, List.length args) ]
           | _ -> []))
      b.link;
    List.iter
      (fun (_, t) ->
        match t with
        | Ast.T_skolem (f, _) when not (List.mem f created) ->
          errors := Skolem_not_created f :: !errors
        | _ -> ())
      b.collect;
    (* safety: construction variables and negated variables must be
       positively bound here or by an ancestor *)
    let bound_here =
      Ast.dedup (List.fold_left Ast.positive_vars bound b.where)
    in
    let used = ref [] in
    List.iter
      (fun (_, args) -> used := List.fold_left Ast.term_vars !used args)
      b.create;
    List.iter
      (fun (x, l, y) ->
        used := Ast.term_vars (Ast.term_vars !used x) y;
        used := Ast.label_vars !used l)
      b.link;
    List.iter (fun (_, t) -> used := Ast.term_vars !used t) b.collect;
    List.iter
      (function
        | Ast.C_not c -> used := Ast.condition_vars !used c
        | _ -> ())
      b.where;
    List.iter
      (fun v ->
        if not (List.mem v bound_here) then
          warnings := Unsafe_variable v :: !warnings)
      (Ast.dedup !used);
    List.iter (scan_block bound_here) b.nested
  in
  List.iter (scan_block []) q.blocks;
  {
    errors = List.rev !errors;
    warnings =
      List.sort_uniq Stdlib.compare (List.rev !warnings);
  }

let is_safe q = (check q).warnings = []
let is_valid q = (check q).errors = []

exception Invalid of problem list

let validate_exn q =
  let r = check q in
  if r.errors <> [] then raise (Invalid r.errors)
