lib/struql/check.mli: Ast Format
