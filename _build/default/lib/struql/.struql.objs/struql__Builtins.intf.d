lib/struql/builtins.mli: Graph Sgraph Value
