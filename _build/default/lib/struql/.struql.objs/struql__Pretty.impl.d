lib/struql/pretty.ml: Ast Fmt List Path Sgraph String Value
