lib/struql/plan.ml: Array Ast Builtins Float Fmt Graph List Path Pretty Set Sgraph String Value
