lib/struql/eval.mli: Ast Builtins Format Graph Map Plan Sgraph Skolem Value
