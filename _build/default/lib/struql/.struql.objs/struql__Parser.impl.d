lib/struql/parser.ml: Ast Builtins Fmt Lex List Path Sgraph String Value
