lib/struql/plan.mli: Ast Builtins Format Set Sgraph
