lib/struql/pretty.mli: Ast Format Sgraph
