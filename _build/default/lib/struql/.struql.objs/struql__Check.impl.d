lib/struql/check.ml: Ast Fmt Hashtbl List Pretty Stdlib
