lib/struql/eval.ml: Ast Builtins Check Fmt Graph Hashtbl List Map Oid Parser Path Plan Pretty Printf Sgraph Skolem String Value
