lib/struql/builtins.ml: Graph List Sgraph String Value
