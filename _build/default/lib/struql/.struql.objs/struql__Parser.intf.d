lib/struql/parser.mli: Ast Builtins
