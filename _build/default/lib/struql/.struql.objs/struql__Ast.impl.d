lib/struql/ast.ml: List Sgraph String
