(** Pretty-printer and structural equality for StruQL.

    The printed form re-parses to a structurally equal query
    ([Parser.parse (to_string q)] satisfies [query_equal q]); label
    predicates inside path expressions compare by name. *)

val pp_term : Format.formatter -> Ast.term -> unit
val pp_label_term : Format.formatter -> Ast.label_term -> unit
val pp_cmp_op : Format.formatter -> Ast.cmp_op -> unit
val pp_condition : Format.formatter -> Ast.condition -> unit
val pp_link : Format.formatter -> Ast.link_clause -> unit
val pp_create : Format.formatter -> Ast.create_clause -> unit
val pp_collect : Format.formatter -> Ast.collect_clause -> unit
val pp_block : ?indent:int -> Format.formatter -> Ast.block -> unit
val pp_query : Format.formatter -> Ast.query -> unit
val to_string : Ast.query -> string
val condition_to_string : Ast.condition -> string

(** {1 Structural equality} *)

val rpe_equal : Sgraph.Path.t -> Sgraph.Path.t -> bool
val term_equal : Ast.term -> Ast.term -> bool
val condition_equal : Ast.condition -> Ast.condition -> bool
val link_equal : Ast.link_clause -> Ast.link_clause -> bool
val block_equal : Ast.block -> Ast.block -> bool
val query_equal : Ast.query -> Ast.query -> bool
