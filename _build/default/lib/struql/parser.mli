(** Parser for StruQL's concrete syntax.

    The syntax follows the paper (keywords are case-insensitive):

    {v
    INPUT BIBTEX
    { CREATE RootPage(), AbstractsPage()
      LINK RootPage() -> "AbstractsPage" -> AbstractsPage() }
    { WHERE Publications(x), x -> l -> v
      CREATE PaperPresentation(x), AbstractPage(x)
      LINK AbstractPage(x) -> l -> v
      { WHERE l = "year"
        CREATE YearPage(v)
        LINK YearPage(v) -> "Paper" -> PaperPresentation(x) }
    }
    OUTPUT HomePage
    v}

    Braces delimit blocks; a nested block's WHERE conjoins with its
    ancestors'.  Top-level clauses outside any brace form one implicit
    block.  Conditions are separated by [,] or [;].  Single-edge
    conditions write [x -> l -> y] (an identifier hop is an arc
    variable, a string hop a literal label); anything richer — [*],
    concatenation [.], alternation [|], postfix [* + ?], registered
    label predicates, [true] — is a regular path expression.
    [x in {"a", "b"}] abbreviates a disjunction of equalities;
    [not(...)] negates a single condition.  In construction clauses,
    [F(args)] is a Skolem term and [count/sum/min/max/avg(t)] an
    aggregate (LINK targets only). *)

exception Parse_error of string * int  (** message, line *)

val parse : ?registry:Builtins.registry -> string -> Ast.query
(** Parse a complete query.  The [registry] resolves label-predicate
    names inside regular path expressions (defaults to
    {!Builtins.default}). *)

val parse_conditions :
  ?registry:Builtins.registry -> string -> Ast.condition list
(** Parse a bare condition list (the contents of one WHERE clause). *)
