lib/sites/org.ml: Graph List Mediator Schema Sgraph Strudel Template Wrappers
