lib/sites/cnn.ml: List Schema Strudel Template Wrappers
