lib/sites/rodin.ml: Graph List Printf Schema Sgraph Strudel Template Value
