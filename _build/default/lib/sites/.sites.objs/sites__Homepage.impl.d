lib/sites/homepage.ml: Ddl List Schema Sgraph Strudel Template Wrappers
