lib/sites/paper_example.ml: Schema Sgraph Strudel Template Wrappers
