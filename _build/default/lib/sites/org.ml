(** The organization site — the reproduction of the paper's largest
    example, the internal and external Web sites of AT&T Labs–Research
    (§5.1).

    Five data sources are integrated by the GAV warehousing mediator:
    a relational database with two tables ([People], [Orgs]), a
    structured file of projects, a BibTeX bibliography, and existing
    HTML pages.  The internal site (home pages of ~400 people, pages
    for organizations, projects, research areas and publications, plus
    an intranet page of proprietary rosters) is defined by one
    site-definition query; the external site shares the same site graph
    and differs only in five templates that exclude or reformat
    information that cannot be viewed externally — exactly the
    paper's account of how the external site cost nothing new. *)

open Sgraph

(* --- Sources --- *)

type sources = {
  rdb : Mediator.Source.t;       (* personnel + organization tables *)
  projects : Mediator.Source.t;  (* structured project files *)
  bib : Mediator.Source.t;       (* publications *)
  html : Mediator.Source.t;      (* legacy HTML pages *)
}

let legacy_pages =
  [
    ( "visitors.html",
      "<html><head><title>Visiting the lab</title></head><body>\n\
       <h1>Visiting the lab</h1><p>Directions to Florham Park and \
       Murray Hill.</p>\n\
       <a href=\"http://www.example.com/map\">Campus map</a></body></html>"
    );
    ( "history.html",
      "<html><head><title>Lab history</title></head><body>\n\
       <h1>Lab history</h1><p>Seventy years of research.</p>\n\
       <img src=\"img/building.jpg\"></body></html>" );
    ( "awards.html",
      "<html><head><title>Awards</title></head><body><h1>Awards</h1>\n\
       <h2>Best paper awards</h2><p>A list of awards.</p></body></html>" );
  ]

let make_sources ?(seed = 11) ~people ~orgs ~projects ~pubs () : sources =
  let people_csv, orgs_csv = Wrappers.Synth.org_csv ~seed ~people ~orgs () in
  let rdb_loader () =
    let g = Graph.create ~name:"RDB" () in
    (* both tables load together so the people→org and org→director
       foreign keys resolve in either direction *)
    ignore
      (Wrappers.Csv.load_tables g
         [
           Wrappers.Csv.table_of_string ~name:"People" people_csv;
           Wrappers.Csv.table_of_string ~name:"Orgs" orgs_csv;
         ]);
    g
  in
  let projects_text =
    Wrappers.Synth.projects_file ~seed:(seed + 1) ~projects ~people ()
  in
  let bib_text = Wrappers.Synth.bibtex ~seed:(seed + 2) ~entries:pubs () in
  {
    rdb = Mediator.Source.make ~name:"rdb" rdb_loader;
    projects =
      Mediator.Source.make ~name:"projects" (fun () ->
          fst (Wrappers.Structured_file.load ~graph_name:"FILES" projects_text));
    bib =
      Mediator.Source.make ~name:"bib" (fun () ->
          fst (Wrappers.Bibtex.load ~graph_name:"BIB" bib_text));
    html =
      Mediator.Source.make ~name:"html" (fun () ->
          fst (Wrappers.Html_wrapper.load_pages ~graph_name:"HTML" legacy_pages));
  }

(* --- GAV mediation: the mediated schema has collections People,
   Orgs, Projects, Publications and Pages --- *)

let mediation_mappings : Mediator.Gav.mapping list =
  let m source q = Mediator.Gav.mapping_of_string ~source (q ^ " OUTPUT mediated") in
  [
    m "rdb"
      {|WHERE People(x), x -> l -> v, isAtomic(v)
        CREATE Person(x) LINK Person(x) -> l -> v
        COLLECT People(Person(x))|};
    m "rdb"
      {|WHERE Orgs(x), x -> l -> v, isAtomic(v)
        CREATE Org(x) LINK Org(x) -> l -> v
        COLLECT Orgs(Org(x))|};
    m "rdb"
      {|WHERE People(x), x -> "org" -> o, Orgs(o)
        CREATE Person(x), Org(o)
        LINK Person(x) -> "Org" -> Org(o), Org(o) -> "Member" -> Person(x)|};
    m "rdb"
      {|WHERE Orgs(x), x -> "director" -> d, People(d)
        CREATE Org(x), Person(d)
        LINK Org(x) -> "Director" -> Person(d)|};
    m "rdb"
      {|WHERE Orgs(x), x -> "parent" -> q, Orgs(q)
        CREATE Org(x), Org(q)
        LINK Org(x) -> "Parent" -> Org(q), Org(q) -> "SubOrg" -> Org(x)|};
    m "projects"
      {|WHERE Projects(x), x -> l -> v, isAtomic(v)
        CREATE Proj(x) LINK Proj(x) -> l -> v
        COLLECT Projects(Proj(x))|};
    (* cross-source join: project members reference people by login *)
    m "*"
      {|WHERE Projects(j), j -> "member" -> mlogin,
              People(p), p -> "login" -> mlogin
        CREATE Proj(j), Person(p)
        LINK Proj(j) -> "Member" -> Person(p),
             Person(p) -> "Project" -> Proj(j)|};
    m "bib"
      {|WHERE Publications(x), x -> l -> v, isAtomic(v)
        CREATE Pub(x) LINK Pub(x) -> l -> v
        COLLECT Publications(Pub(x))|};
    (* cross-source join: publication authors matched to people by name *)
    m "*"
      {|WHERE Publications(x), x -> "author" -> a,
              People(p), p -> "name" -> a
        CREATE Pub(x), Person(p)
        LINK Pub(x) -> "AuthorPerson" -> Person(p),
             Person(p) -> "Publication" -> Pub(x)|};
    m "html"
      {|WHERE Pages(x), x -> l -> v, isAtomic(v)
        CREATE LegacyDoc(x) LINK LegacyDoc(x) -> l -> v
        COLLECT Pages(LegacyDoc(x))|};
  ]

let warehouse sources =
  Mediator.Warehouse.create
    ~sources:[ sources.rdb; sources.projects; sources.bib; sources.html ]
    ~mappings:mediation_mappings ()

(* --- The internal site-definition query --- *)

let site_query =
  {|INPUT MEDIATED
// Top-level pages: home plus one index per facet, and the intranet.
{ CREATE Home(), PeopleIndex(), ProjectIndex(), AreaIndex(),
         PubsIndex(), LegacyIndex(), Intranet(), Banner()
  LINK Home() -> "PeopleIndex" -> PeopleIndex(),
       Home() -> "ProjectIndex" -> ProjectIndex(),
       Home() -> "AreaIndex" -> AreaIndex(),
       Home() -> "PubsIndex" -> PubsIndex(),
       Home() -> "LegacyIndex" -> LegacyIndex(),
       Home() -> "Intranet" -> Intranet(),
       Home() -> "Banner" -> Banner(),
       PeopleIndex() -> "Banner" -> Banner(),
       ProjectIndex() -> "Banner" -> Banner(),
       AreaIndex() -> "Banner" -> Banner(),
       PubsIndex() -> "Banner" -> Banner(),
       Banner() -> "HTML-template" -> "banner"
  COLLECT Homes(Home()), PeopleIndexes(PeopleIndex()),
          ProjectIndexes(ProjectIndex()), AreaIndexes(AreaIndex()),
          PubsIndexes(PubsIndex()), LegacyIndexes(LegacyIndex()),
          Intranets(Intranet()) }
// A home page for every person, carrying all their public attributes.
{ WHERE People(p)
  CREATE PersonPage(p)
  LINK PeopleIndex() -> "Person" -> PersonPage(p)
  COLLECT PersonPages(PersonPage(p))
  { WHERE p -> l -> v, isAtomic(v)
    LINK PersonPage(p) -> l -> v }
  { WHERE p -> "Org" -> o
    LINK PersonPage(p) -> "Organization" -> OrgPage(o) }
  { WHERE p -> "Project" -> j
    LINK PersonPage(p) -> "ProjectPage" -> ProjectPage(j) }
  { WHERE p -> "Publication" -> x
    LINK PersonPage(p) -> "Paper" -> PubPresentation(x) }
}
// A page per organization: members, director, sub-organizations.
{ WHERE Orgs(o)
  CREATE OrgPage(o)
  LINK Home() -> "Organization" -> OrgPage(o)
  COLLECT OrgPages(OrgPage(o))
  { WHERE o -> l -> v, isAtomic(v)
    LINK OrgPage(o) -> l -> v }
  { WHERE o -> "Director" -> d
    LINK OrgPage(o) -> "DirectorPage" -> PersonPage(d) }
  { WHERE o -> "SubOrg" -> q
    LINK OrgPage(o) -> "SubOrgPage" -> OrgPage(q) }
  { WHERE o -> "Member" -> p2
    LINK OrgPage(o) -> "MemberPage" -> PersonPage(p2) }
}
// Project pages; proprietary ones select the intranet template.
{ WHERE Projects(j)
  CREATE ProjectPage(j)
  LINK ProjectIndex() -> "Project" -> ProjectPage(j)
  COLLECT ProjectPages(ProjectPage(j))
  { WHERE j -> l -> v, isAtomic(v)
    LINK ProjectPage(j) -> l -> v }
  { WHERE j -> "Member" -> p3
    LINK ProjectPage(j) -> "MemberPage" -> PersonPage(p3) }
  { WHERE j -> "proprietary" -> f, f = true
    LINK ProjectPage(j) -> "HTML-template" -> "proprietary-project" }
}
// One page per research area, listing its people.
{ WHERE People(p), p -> "area" -> ar
  CREATE AreaPage(ar)
  LINK AreaIndex() -> "Area" -> AreaPage(ar),
       AreaPage(ar) -> "Name" -> ar,
       AreaPage(ar) -> "PersonPage" -> PersonPage(p)
  COLLECT AreaPages(AreaPage(ar)) }
// The technical-publications index.
{ WHERE Publications(x)
  CREATE PubPresentation(x)
  LINK PubsIndex() -> "Paper" -> PubPresentation(x)
  COLLECT PubPresentations(PubPresentation(x))
  { WHERE x -> l -> v, isAtomic(v)
    LINK PubPresentation(x) -> l -> v }
  { WHERE x -> "AuthorPerson" -> p4
    LINK PubPresentation(x) -> "AuthorPage" -> PersonPage(p4) }
}
// Wrapped legacy HTML pages, rendered through a named template.
{ WHERE Pages(h)
  CREATE LegacyPage(h)
  LINK LegacyIndex() -> "Doc" -> LegacyPage(h),
       LegacyPage(h) -> "HTML-template" -> "legacy-doc"
  COLLECT LegacyPages(LegacyPage(h))
  { WHERE h -> l -> v, isAtomic(v)
    LINK LegacyPage(h) -> l -> v }
}
// Intranet rosters: proprietary projects and people (internal only).
{ WHERE Projects(j2), j2 -> "proprietary" -> f2, f2 = true
  LINK Intranet() -> "ProprietaryProject" -> ProjectPage(j2) }
{ WHERE People(p5), p5 -> "proprietary" -> f3, f3 = true
  LINK Intranet() -> "ProprietaryPerson" -> PersonPage(p5) }
OUTPUT ORGSITE
|}

(* --- Internal templates --- *)

let home_tpl =
  {|<SFMT @Banner EMBED>
<h1>The Research Lab</h1>
<p>Welcome to the laboratory's internal site.</p>
<ul>
<li><SFMT @PeopleIndex LINK="People"></li>
<li><SFMT @ProjectIndex LINK="Projects"></li>
<li><SFMT @AreaIndex LINK="Research areas"></li>
<li><SFMT @PubsIndex LINK="Technical publications"></li>
<li><SFMT @LegacyIndex LINK="About the lab"></li>
<li><SFMT @Intranet LINK="Intranet (internal)"></li>
</ul>
<h3>Organizations</h3>
<SFMTLIST @Organization ORDER=ascend KEY=name>
|}

let people_index_tpl =
  {|<SFMT @Banner EMBED>
<h1>People</h1>
<SFMTLIST @Person ORDER=ascend KEY=name>
|}

let person_tpl =
  {|<h1><SFMT @name></h1>
<p><b>Login:</b> <SFMT @login> · <b>Email:</b> <SFMT @email></p>
<SIF @phone != NULL><p><b>Phone:</b> <SFMT @phone></p></SIF>
<SIF @office != NULL><p><b>Office:</b> <SFMT @office></p></SIF>
<SIF @area != NULL><p><b>Research area:</b> <SFMT @area></p></SIF>
<p><b>Organization:</b> <SFMT @Organization></p>
<SIF @ProjectPage><h3>Projects</h3><SFMTLIST @ProjectPage ORDER=ascend KEY=name></SIF>
<SIF @Paper><h3>Publications</h3><SFMTLIST @Paper ORDER=descend KEY=year></SIF>
<SIF @proprietary = true><p><i>[works on proprietary matters]</i></p></SIF>
|}

let org_tpl =
  {|<h1><SFMT @name></h1>
<SIF @DirectorPage><p><b>Director:</b> <SFMT @DirectorPage></p></SIF>
<SIF @SubOrgPage><h3>Sub-organizations</h3><SFMTLIST @SubOrgPage ORDER=ascend KEY=name></SIF>
<h3>Members</h3>
<SFMTLIST @MemberPage ORDER=ascend KEY=name>
|}

let project_index_tpl =
  {|<SFMT @Banner EMBED>
<h1>Projects</h1>
<SFMTLIST @Project ORDER=ascend KEY=name>
|}

let project_tpl =
  {|<h1><SFMT @name></h1>
<SIF @synopsis != NULL><p><SFMT @synopsis></p><SELSE><p><i>(no synopsis)</i></p></SIF>
<SIF @sponsor != NULL><p><b>Sponsor:</b> <SFMT @sponsor></p></SIF>
<h3>Members</h3>
<SFMTLIST @MemberPage ORDER=ascend KEY=name>
|}

let proprietary_project_tpl =
  {|<p><b>[INTERNAL — proprietary project]</b></p>
<h1><SFMT @name></h1>
<SIF @synopsis != NULL><p><SFMT @synopsis></p></SIF>
<SIF @sponsor != NULL><p><b>Sponsor:</b> <SFMT @sponsor></p></SIF>
<h3>Members</h3>
<SFMTLIST @MemberPage ORDER=ascend KEY=name>
|}

let area_index_tpl =
  {|<SFMT @Banner EMBED>
<h1>Research areas</h1>
<SFMTLIST @Area ORDER=ascend KEY=Name>
|}

let area_tpl =
  {|<h1><SFMT @Name></h1>
<h3>People working in this area</h3>
<SFMTLIST @PersonPage ORDER=ascend KEY=name>
|}

let pubs_index_tpl =
  {|<SFMT @Banner EMBED>
<h1>Technical publications</h1>
<SFMTLIST @Paper ORDER=descend KEY=year>
|}

let pub_tpl =
  {|<b><SIF @postscript != NULL><SFMT @postscript LINK=@title><SELSE><SFMT @title></SIF></b>.
<SFMT @author DELIM=", ">.
<SIF @journal != NULL><i><SFMT @journal></i>, </SIF><SIF @booktitle != NULL><i><SFMT @booktitle></i>, </SIF><SFMT @year>.
<SIF @AuthorPage>(local: <SFMT @AuthorPage DELIM=", ">)</SIF>
|}

let legacy_index_tpl =
  {|<h1>About the lab</h1>
<SFMTLIST @Doc ORDER=ascend KEY=title>
|}

let legacy_doc_tpl =
  {|<h1><SFMT @title></h1>
<SIF @heading><h3><SFMT @heading DELIM=" · "></h3></SIF>
<p><SFMT @text></p>
<SIF @image><p><SFMT @image></p></SIF>
|}

let intranet_tpl =
  {|<h1>Intranet</h1>
<p><b>[INTERNAL ONLY]</b></p>
<SIF @ProprietaryProject><h3>Proprietary projects</h3><SFMTLIST @ProprietaryProject ORDER=ascend KEY=name></SIF>
<SIF @ProprietaryPerson><h3>People on proprietary work</h3><SFMTLIST @ProprietaryPerson ORDER=ascend KEY=name></SIF>
|}

let banner_tpl = {|<p align="center">— The Research Lab —</p><hr>|}

let internal_templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("Homes", home_tpl);
        ("PeopleIndexes", people_index_tpl);
        ("PersonPages", person_tpl);
        ("OrgPages", org_tpl);
        ("ProjectIndexes", project_index_tpl);
        ("ProjectPages", project_tpl);
        ("AreaIndexes", area_index_tpl);
        ("AreaPages", area_tpl);
        ("PubsIndexes", pubs_index_tpl);
        ("PubPresentations", pub_tpl);
        ("LegacyIndexes", legacy_index_tpl);
        ("Intranets", intranet_tpl);
      ];
    named =
      [
        ("banner", banner_tpl);
        ("legacy-doc", legacy_doc_tpl);
        ("proprietary-project", proprietary_project_tpl);
      ];
  }

(* --- External templates: five files differ (home, person, project,
   banner, intranet); everything else is shared --- *)

let home_ext_tpl =
  {|<SFMT @Banner EMBED>
<h1>The Research Lab</h1>
<p>Welcome to the laboratory.</p>
<ul>
<li><SFMT @PeopleIndex LINK="People"></li>
<li><SFMT @ProjectIndex LINK="Projects"></li>
<li><SFMT @AreaIndex LINK="Research areas"></li>
<li><SFMT @PubsIndex LINK="Technical publications"></li>
<li><SFMT @LegacyIndex LINK="About the lab"></li>
</ul>
<h3>Organizations</h3>
<SFMTLIST @Organization ORDER=ascend KEY=name>
|}

let person_ext_tpl =
  {|<h1><SFMT @name></h1>
<p><b>Email:</b> <SFMT @email></p>
<SIF @area != NULL><p><b>Research area:</b> <SFMT @area></p></SIF>
<p><b>Organization:</b> <SFMT @Organization></p>
<SIF @ProjectPage><h3>Projects</h3><SFMTLIST @ProjectPage ORDER=ascend KEY=name></SIF>
<SIF @Paper><h3>Publications</h3><SFMTLIST @Paper ORDER=descend KEY=year></SIF>
|}

let project_ext_tpl =
  {|<h1><SFMT @name></h1>
<SIF @proprietary = true><p><i>Details of this project are not public.</i></p>
<SELSE><SIF @synopsis != NULL><p><SFMT @synopsis></p></SIF>
<h3>Members</h3>
<SFMTLIST @MemberPage ORDER=ascend KEY=name></SIF>
|}

let intranet_ext_tpl =
  {|<h1>Not available</h1>
<p>This page is available on the internal server only.</p>
|}

let external_templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      List.map
        (fun (c, t) ->
          match c with
          | "Homes" -> (c, home_ext_tpl)
          | "PersonPages" -> (c, person_ext_tpl)
          | "ProjectPages" -> (c, project_ext_tpl)
          | "Intranets" -> (c, intranet_ext_tpl)
          | _ -> (c, t))
        internal_templates.Template.Generator.by_collection;
    named =
      [
        ("banner", banner_tpl);
        ("legacy-doc", legacy_doc_tpl);
        ("proprietary-project", project_ext_tpl);
      ];
  }

let constraints =
  [
    Schema.Verify.Reachable_from "Home";
    Schema.Verify.Points_to ("OrgPage", "MemberPage", "PersonPage");
    Schema.Verify.Points_to ("ProjectPage", "MemberPage", "PersonPage");
    Schema.Verify.Acyclic_links "SubOrgPage";
  ]

let definition =
  Strudel.Site.define ~name:"ORGSITE" ~root_family:"Home"
    ~templates:internal_templates ~constraints
    [ ("site", site_query) ]

(* --- Builders --- *)

let default_people = 400
let default_orgs = 12
let default_projects = 30
let default_pubs = 80

let data ?(seed = 11) ?(people = default_people) ?(orgs = default_orgs)
    ?(projects = default_projects) ?(pubs = default_pubs) () =
  let sources = make_sources ~seed ~people ~orgs ~projects ~pubs () in
  let w = warehouse sources in
  (sources, w)

(** Build the internal site and derive the external one from the same
    site graph. *)
let build_both ?seed ?people ?orgs ?projects ?pubs () =
  let _sources, w = data ?seed ?people ?orgs ?projects ?pubs () in
  let internal =
    Strudel.Site.build ~data:(Mediator.Warehouse.graph w) definition
  in
  let external_ = Strudel.Site.regenerate internal external_templates in
  (internal, external_)

let build ?seed ?people ?orgs ?projects ?pubs () =
  fst (build_both ?seed ?people ?orgs ?projects ?pubs ())
