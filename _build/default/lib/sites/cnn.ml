(** The CNN demonstration site (§5.1).

    The paper mapped ~300 crawled CNN pages into a data graph and
    defined the site with a 44-line query and nine templates; a
    "sports only" variant differed only by two extra predicates in one
    WHERE clause, and a text-only variant was produced with a second
    site-definition query (the Section-3 example).  We reproduce all
    three over a synthetic article base of the same shape. *)


let data ?(articles = 300) ?(seed = 4) () =
  Wrappers.Synth.news_graph ~seed ~articles ()

(* --- The general site: 44 lines, front page / section pages /
   article pages / bylines index --- *)

let general_query =
  {|INPUT NEWS
// The front page and the static indexes
{ CREATE FrontPage(), BylineIndex()
  LINK FrontPage() -> "Bylines" -> BylineIndex()
  COLLECT FrontPages(FrontPage()), BylineIndexes(BylineIndex()) }
// One page per section, one presentation per article in the section;
// everything article-related nests under this join
{ WHERE Articles(a), a -> "section" -> s
  CREATE SectionPage(s), ArticlePage(a)
  LINK SectionPage(s) -> "Name" -> s,
       SectionPage(s) -> "ArticleCount" -> count(a),
       SectionPage(s) -> "Article" -> ArticlePage(a),
       ArticlePage(a) -> "Section" -> SectionPage(s),
       FrontPage() -> "Section" -> SectionPage(s),
       FrontPage() -> "Headline" -> ArticlePage(a)
  COLLECT SectionPages(SectionPage(s)), ArticlePages(ArticlePage(a))
  // Copy every article attribute onto its page
  { WHERE a -> l -> v
    LINK ArticlePage(a) -> l -> v }
  // Cross links between related articles
  { WHERE a -> "related" -> r, r -> "section" -> s2
    LINK ArticlePage(a) -> "Related" -> ArticlePage(r) }
  // Byline index groups articles by reporter
  { WHERE a -> "byline" -> w
    CREATE ReporterPage(w)
    LINK ReporterPage(w) -> "Name" -> w,
         ReporterPage(w) -> "Article" -> ArticlePage(a),
         BylineIndex() -> "Reporter" -> ReporterPage(w)
    COLLECT ReporterPages(ReporterPage(w)) }
}
OUTPUT CNNSite
|}

(* --- Sports only: the same query with two extra predicates — exactly
   the paper's description of how the variant was derived --- *)

let sports_only_query =
  {|INPUT NEWS
{ CREATE FrontPage(), BylineIndex()
  LINK FrontPage() -> "Bylines" -> BylineIndex()
  COLLECT FrontPages(FrontPage()), BylineIndexes(BylineIndex()) }
{ WHERE Articles(a), a -> "section" -> s, s = "Sports"
  CREATE SectionPage(s), ArticlePage(a)
  LINK SectionPage(s) -> "Name" -> s,
       SectionPage(s) -> "ArticleCount" -> count(a),
       SectionPage(s) -> "Article" -> ArticlePage(a),
       ArticlePage(a) -> "Section" -> SectionPage(s),
       FrontPage() -> "Section" -> SectionPage(s),
       FrontPage() -> "Headline" -> ArticlePage(a)
  COLLECT SectionPages(SectionPage(s)), ArticlePages(ArticlePage(a))
  { WHERE a -> l -> v
    LINK ArticlePage(a) -> l -> v }
  { WHERE a -> "related" -> r, r -> "section" -> s2, s2 = "Sports"
    LINK ArticlePage(a) -> "Related" -> ArticlePage(r) }
  { WHERE a -> "byline" -> w
    CREATE ReporterPage(w)
    LINK ReporterPage(w) -> "Name" -> w,
         ReporterPage(w) -> "Article" -> ArticlePage(a),
         BylineIndex() -> "Reporter" -> ReporterPage(w)
    COLLECT ReporterPages(ReporterPage(w)) }
}
OUTPUT CNNSports
|}

(* --- The nine templates --- *)

let front_template =
  {|<h1>News</h1>
<h3>Sections</h3>
<SFMTLIST @Section ORDER=ascend KEY=Name>
<h3>Top stories</h3>
<SFMTLIST @Headline ORDER=descend KEY=date>
<p><SFMT @Bylines LINK="Our reporters"></p>
|}

let section_template =
  {|<h1><SFMT @Name></h1>
<p><i><SFMT @ArticleCount> stories</i></p>
<SFOR a IN @Article ORDER=descend KEY=date DELIM="\n">
<p><SFMT @a> <i>(<SFMT @a.date>)</i></p>
</SFOR>
|}

let article_template =
  {|<h1><SFMT @headline></h1>
<p><i><SFMT @date><SIF @byline != NULL> — <SFMT @byline></SIF></i></p>
<SIF @image != NULL><p><SFMT @image></p></SIF>
<p><SFMT @body></p>
<SIF @Related><h3>Related stories</h3><SFMTLIST @Related KEY=headline ORDER=ascend></SIF>
<p>Sections: <SFMT @Section DELIM=", "></p>
|}

let text_only_article_template =
  {|<h1><SFMT @headline></h1>
<p><i><SFMT @date><SIF @byline != NULL> — <SFMT @byline></SIF></i></p>
<p><SFMT @body></p>
<SIF @Related><h3>Related stories</h3><SFMTLIST @Related KEY=headline ORDER=ascend></SIF>
<p>Sections: <SFMT @Section DELIM=", "></p>
|}

let byline_index_template =
  {|<h1>Reporters</h1>
<SFMTLIST @Reporter ORDER=ascend KEY=Name>
|}

let reporter_template =
  {|<h1><SFMT @Name></h1>
<SFMTLIST @Article ORDER=descend KEY=date KEY=headline>
|}

(* a header/footer pair shows that visual chrome lives in templates,
   not in the site structure *)
let banner_template = {|<hr><p align="center">News — a STRUDEL site</p>|}
let plain_banner_template = {|<hr><p>News</p>|}

let nav_template = {|<p><a href="FrontPage.html">Front page</a></p>|}

let templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("FrontPages", front_template);
        ("SectionPages", section_template);
        ("ArticlePages", article_template);
        ("BylineIndexes", byline_index_template);
        ("ReporterPages", reporter_template);
      ];
    named =
      [
        ("banner", banner_template);
        ("plain-banner", plain_banner_template);
        ("nav", nav_template);
        ("article", article_template);
      ];
  }

(** The text-only presentation: same site graph, image-free article
    template (the paper's CNN text-only inconsistency, fixed the
    STRUDEL way — change one template, every page follows). *)
let text_only_templates : Template.Generator.template_set =
  {
    templates with
    Template.Generator.by_collection =
      List.map
        (fun (c, t) ->
          if c = "ArticlePages" then (c, text_only_article_template)
          else (c, t))
        templates.Template.Generator.by_collection;
  }

let constraints =
  [
    Schema.Verify.Reachable_from "FrontPage";
    Schema.Verify.Points_to ("SectionPage", "Article", "ArticlePage");
    Schema.Verify.Points_to ("ArticlePage", "Section", "SectionPage");
    Schema.Verify.Points_to ("ReporterPage", "Article", "ArticlePage");
  ]

let definition =
  Strudel.Site.define ~name:"CNNSite" ~root_family:"FrontPage" ~templates
    ~constraints
    [ ("site", general_query) ]

let sports_definition =
  Strudel.Site.define ~name:"CNNSports" ~root_family:"FrontPage" ~templates
    ~constraints:[ Schema.Verify.Reachable_from "FrontPage" ]
    [ ("site", sports_only_query) ]

let text_only_definition =
  { definition with Strudel.Site.templates = text_only_templates }

(* --- The TextOnly derived site of §3: a second query over the
   generated site graph, copying everything reachable from the root
   while dropping image edges --- *)

let text_only_copy_query =
  {|INPUT CNNSITE
{ WHERE FrontPages(p), p -> * -> q, q -> l -> q2, not(isImageFile(q2))
  CREATE New(p), New(q), New(q2)
  LINK New(q) -> l -> New(q2)
  COLLECT TextOnlyRoot(New(p)) }
OUTPUT TextOnly
|}

let build ?articles ?seed () =
  Strudel.Site.build ~data:(data ?articles ?seed ()) definition

let build_sports ?articles ?seed () =
  Strudel.Site.build ~data:(data ?articles ?seed ()) sports_definition
