(** The paper's running example, verbatim: the Fig. 2 data graph, the
    Fig. 3 site-definition query and the Fig. 7 HTML templates.  Used
    by the quickstart example and by the E1–E5 figure reproductions. *)

(* --- Fig. 2: fragment of the data graph, in the DDL --- *)

let data_ddl =
  {|collection Publications { abstract text postscript ps }
object pub1 in Publications {
  title "Specifying Representations of Machine Instructions"
  author "Norman Ramsey"
  author "Mary Fernandez"
  year 1997
  month "May"
  journal "Transactions on Programming Languages and Systems"
  pub-type "article"
  abstract "abstracts/toplas97.txt"
  postscript "papers/toplas97.ps.gz"
  volume "19 (3)"
  category "Architecture Specifications"
  category "Programming Languages"
}
object pub2 in Publications {
  title "Optimizing Regular Path Expressions Using Graph Schemas"
  author "Mary Fernandez"
  author "Dan Suciu"
  year 1998
  booktitle "Proc. of ICDE"
  pub-type "inproceedings"
  abstract "abstracts/icde98.txt"
  postscript "papers/icde98.ps.gz"
  category "Semistructured Data"
  category "Programming Languages"
}
|}

(* --- Fig. 3: the site-definition query --- *)

let site_query =
  {|INPUT BIBTEX
// Create Root & Abstracts page and link them
{ CREATE RootPage(), AbstractsPage()
  LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
  COLLECT RootPages(RootPage()), AbstractsPages(AbstractsPage()) }
// Create a presentation for every publication x
{ WHERE Publications(x), x -> l -> v                         // Q1
  CREATE PaperPresentation(x), AbstractPage(x)
  LINK AbstractPage(x) -> l -> v,
       PaperPresentation(x) -> l -> v,
       PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
       AbstractsPage() -> "Abstract" -> AbstractPage(x)
  COLLECT PaperPresentations(PaperPresentation(x)),
          AbstractPages(AbstractPage(x))
  { // Create a page for every year
    WHERE l = "year"                                         // Q2
    CREATE YearPage(v)
    LINK YearPage(v) -> "Year" -> v,
         YearPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "YearPage" -> YearPage(v)
    COLLECT YearPages(YearPage(v)) }
  { // Create a page for every category
    WHERE l = "category"                                     // Q3
    CREATE CategoryPage(v)
    LINK CategoryPage(v) -> "Name" -> v,
         CategoryPage(v) -> "Paper" -> PaperPresentation(x),
         RootPage() -> "CategoryPage" -> CategoryPage(v)
    COLLECT CategoryPages(CategoryPage(v)) }
}
OUTPUT HomePage
|}

(* --- Fig. 7: the HTML templates --- *)

let root_template =
  {|<h1>Publications</h1>
<h3>Publications by Year</h3>
<SFMTLIST @YearPage ORDER=ascend KEY=Year>
<h3>Publications by Topic</h3>
<SFMTLIST @CategoryPage ORDER=ascend KEY=Name>
<p><SFMT @AbstractsPage LINK="All paper abstracts"></p>
|}

let abstracts_template =
  {|<h1>Paper Abstracts</h1>
<SFOR a IN @Abstract DELIM="<hr>"><SFMT @a EMBED></SFOR>
|}

let year_template =
  {|<h2>Publications from <SFMT @Year></h2>
<SFMTLIST @Paper ORDER=ascend KEY=title>
|}

let category_template =
  {|<h2>Publications on <SFMT @Name></h2>
<SFMTLIST @Paper ORDER=ascend KEY=title>
|}

let paper_presentation_template =
  {|<b><SFMT @postscript LINK=@title></b>.
By <SFMT @author DELIM=", ">,
<SIF @journal != NULL><i><SFMT @journal></i>, </SIF><SIF @booktitle != NULL><i><SFMT @booktitle></i>, </SIF><SFMT @year>.
<SFMT @Abstract LINK="abstract">
|}

let abstract_page_template =
  {|<h3><SFMT @title></h3>
By <SFMT @author DELIM=", ">.
<SIF @journal != NULL><i><SFMT @journal></i>, </SIF><SIF @booktitle != NULL><i><SFMT @booktitle></i>, </SIF><SFMT @year>.
<p><SFMT @abstract></p>
<p><SFMT @postscript LINK="PostScript"></p>
|}

let templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("RootPages", root_template);
        ("AbstractsPages", abstracts_template);
        ("YearPages", year_template);
        ("CategoryPages", category_template);
        ("PaperPresentations", paper_presentation_template);
        ("AbstractPages", abstract_page_template);
      ];
    named = [];
  }

let constraints =
  [
    Schema.Verify.Reachable_from "RootPage";
    Schema.Verify.Points_to ("YearPage", "Paper", "PaperPresentation");
    Schema.Verify.Points_to ("CategoryPage", "Paper", "PaperPresentation");
    Schema.Verify.Points_to ("PaperPresentation", "Abstract", "AbstractPage");
  ]

let definition =
  Strudel.Site.define ~name:"HomePage" ~root_family:"RootPage" ~templates
    ~constraints
    [ ("site", site_query) ]

let data () : Sgraph.Graph.t =
  fst (Sgraph.Ddl.parse ~graph_name:"BIBTEX" data_ddl)

(** A scaled version of the same site over a generated bibliography —
    the workload of several benches. *)
let data_scaled ?(seed = 3) ~entries () : Sgraph.Graph.t =
  let bib = Wrappers.Synth.bibtex ~seed ~entries () in
  fst (Wrappers.Bibtex.load bib)

let build () = Strudel.Site.build ~data:(data ()) definition
let build_scaled ~entries () =
  Strudel.Site.build ~data:(data_scaled ~entries ()) definition
