(** A researcher's homepage — the paper's "mff" example (§5.1): data
    from two sources (a BibTeX file and a STRUDEL data file with
    personal information: address, phone, projects, professional
    activities, patents), a 48-line site-definition query, thirteen
    templates, and an external version whose templates exclude patents
    and proprietary publications and projects. *)

open Sgraph

let personal_ddl =
  {|collection Owner {}
collection PersonalProjects {}
collection Activities {}
collection Patents {}
object me in Owner {
  name "Mary Fernandez"
  title "Researcher"
  address "180 Park Avenue, Florham Park, NJ 07932"
  phone "+1 973 360 0000"
  email "mff@research.example.com"
  homepage url "http://www.research.example.com/~mff"
  photo image "img/mff.jpg"
}
object proj_strudel in PersonalProjects {
  name "STRUDEL"
  synopsis "A Web-site management system"
  role "co-lead"
}
object proj_mlrisc in PersonalProjects {
  name "MLRISC"
  synopsis "Customizable optimizing back-end"
  role "contributor"
  proprietary true
}
object act_pc in Activities {
  what "Program committee, SIGMOD"
  year 1998
}
object act_editor in Activities {
  what "Associate editor, TODS"
  year 1997
}
object pat_1 in Patents {
  title "Method for declarative Web-site specification"
  number "US0000001"
  year 1998
}
object pat_2 in Patents {
  title "Apparatus for semistructured query evaluation"
  number "US0000002"
  year 1997
}
|}

let bibtex_text ?(entries = 30) ?(seed = 21) () =
  Wrappers.Synth.bibtex ~seed ~entries ()

(* 48 lines between INPUT and OUTPUT, as in the paper's account. *)
let site_query =
  {|INPUT HOME
{ CREATE Root(), VitaPage(), PubsPage(), ActivitiesPage(), PatentsPage()
  LINK Root() -> "Vita" -> VitaPage(),
       Root() -> "Pubs" -> PubsPage(),
       Root() -> "Activities" -> ActivitiesPage(),
       Root() -> "Patents" -> PatentsPage()
  COLLECT Roots(Root()), VitaPages(VitaPage()), PubsPages(PubsPage()),
          ActivitiesPages(ActivitiesPage()), PatentsPages(PatentsPage()) }
{ WHERE Owner(me), me -> l -> v
  LINK VitaPage() -> l -> v, Root() -> l -> v }
{ WHERE PersonalProjects(j)
  CREATE ProjectCard(j)
  LINK VitaPage() -> "Project" -> ProjectCard(j)
  COLLECT ProjectCards(ProjectCard(j))
  { WHERE j -> l -> v
    LINK ProjectCard(j) -> l -> v } }
{ WHERE Activities(a), a -> l -> v
  CREATE ActivityCard(a)
  LINK ActivityCard(a) -> l -> v,
       ActivitiesPage() -> "Activity" -> ActivityCard(a)
  COLLECT ActivityCards(ActivityCard(a)) }
{ WHERE Patents(t), t -> l -> v
  CREATE PatentCard(t)
  LINK PatentCard(t) -> l -> v,
       PatentsPage() -> "Patent" -> PatentCard(t)
  COLLECT PatentCards(PatentCard(t)) }
{ WHERE Publications(x), x -> l -> v
  CREATE Paper(x)
  LINK Paper(x) -> l -> v,
       PubsPage() -> "Paper" -> Paper(x)
  COLLECT Papers(Paper(x))
  { WHERE l = "year"
    CREATE YearIndex(v)
    LINK YearIndex(v) -> "Year" -> v,
         YearIndex(v) -> "Paper" -> Paper(x),
         PubsPage() -> "ByYear" -> YearIndex(v)
    COLLECT YearIndexes(YearIndex(v)) }
  { WHERE l = "category"
    CREATE TopicIndex(v)
    LINK TopicIndex(v) -> "Topic" -> v,
         TopicIndex(v) -> "Paper" -> Paper(x),
         PubsPage() -> "ByTopic" -> TopicIndex(v)
    COLLECT TopicIndexes(TopicIndex(v)) }
}
OUTPUT MFF
|}

(* --- Thirteen templates --- *)

let root_tpl =
  {|<h1><SFMT @name></h1>
<p><i><SFMT @title></i></p>
<SIF @photo != NULL><p><SFMT @photo></p></SIF>
<ul>
<li><SFMT @Vita LINK="About me"></li>
<li><SFMT @Pubs LINK="Publications"></li>
<li><SFMT @Activities LINK="Professional activities"></li>
<li><SFMT @Patents LINK="Patents"></li>
</ul>
|}

let root_ext_tpl =
  {|<h1><SFMT @name></h1>
<p><i><SFMT @title></i></p>
<ul>
<li><SFMT @Vita LINK="About me"></li>
<li><SFMT @Pubs LINK="Publications"></li>
<li><SFMT @Activities LINK="Professional activities"></li>
</ul>
|}

let vita_tpl =
  {|<h1><SFMT @name></h1>
<p><SFMT @address></p>
<p><b>Phone:</b> <SFMT @phone> · <b>Email:</b> <SFMT @email></p>
<p><SFMT @homepage></p>
<h3>Projects</h3>
<SFOR j IN @Project DELIM="\n"><SFMT @j EMBED></SFOR>
|}

let vita_ext_tpl =
  {|<h1><SFMT @name></h1>
<p><b>Email:</b> <SFMT @email></p>
<p><SFMT @homepage></p>
<h3>Projects</h3>
<SFOR j IN @Project DELIM="\n"><SFMT @j EMBED></SFOR>
|}

let project_card_tpl =
  {|<p><b><SFMT @name></b> (<SFMT @role>): <SFMT @synopsis></p>
|}

let project_card_ext_tpl =
  {|<SIF NOT @proprietary = true><p><b><SFMT @name></b>: <SFMT @synopsis></p></SIF>
|}

let pubs_tpl =
  {|<h1>Publications</h1>
<h3>By year</h3>
<SFMTLIST @ByYear ORDER=descend KEY=Year>
<h3>By topic</h3>
<SFMTLIST @ByTopic ORDER=ascend KEY=Topic>
<h3>All papers</h3>
<SFOR p IN @Paper ORDER=descend KEY=year DELIM="\n"><p><SFMT @p EMBED></p></SFOR>
|}

let paper_tpl =
  {|<SIF @postscript != NULL><b><SFMT @postscript LINK=@title></b><SELSE><b><SFMT @title></b></SIF>.
<SFMT @author DELIM=", ">.
<SIF @journal != NULL><i><SFMT @journal></i>, </SIF><SIF @booktitle != NULL><i><SFMT @booktitle></i>, </SIF><SFMT @year>.
|}

let year_index_tpl =
  {|<h2><SFMT @Year></h2>
<SFOR p IN @Paper ORDER=ascend KEY=title DELIM="\n"><p><SFMT @p EMBED></p></SFOR>
|}

let topic_index_tpl =
  {|<h2><SFMT @Topic></h2>
<SFOR p IN @Paper ORDER=ascend KEY=title DELIM="\n"><p><SFMT @p EMBED></p></SFOR>
|}

let activities_tpl =
  {|<h1>Professional activities</h1>
<SFOR a IN @Activity ORDER=descend KEY=year DELIM="\n"><SFMT @a EMBED></SFOR>
|}

let activity_card_tpl = {|<p><SFMT @year>: <SFMT @what></p>
|}

let patents_tpl =
  {|<h1>Patents</h1>
<SFOR t IN @Patent ORDER=descend KEY=year DELIM="\n"><SFMT @t EMBED></SFOR>
|}

let patents_ext_tpl =
  {|<h1>Patents</h1>
<p>This information is not available externally.</p>
|}

let patent_card_tpl =
  {|<p><b><SFMT @title></b>, <SFMT @number> (<SFMT @year>)</p>
|}

let internal_templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("Roots", root_tpl);
        ("VitaPages", vita_tpl);
        ("ProjectCards", project_card_tpl);
        ("PubsPages", pubs_tpl);
        ("Papers", paper_tpl);
        ("YearIndexes", year_index_tpl);
        ("TopicIndexes", topic_index_tpl);
        ("ActivitiesPages", activities_tpl);
        ("ActivityCards", activity_card_tpl);
        ("PatentsPages", patents_tpl);
        ("PatentCards", patent_card_tpl);
      ];
    named = [];
  }

(** External version: same site graph, four changed templates (root
    without the patents link and photo, vita without phone/address,
    project cards hiding proprietary projects, patents page emptied). *)
let external_templates : Template.Generator.template_set =
  {
    internal_templates with
    Template.Generator.by_collection =
      List.map
        (fun (c, t) ->
          match c with
          | "Roots" -> (c, root_ext_tpl)
          | "VitaPages" -> (c, vita_ext_tpl)
          | "ProjectCards" -> (c, project_card_ext_tpl)
          | "PatentsPages" -> (c, patents_ext_tpl)
          | _ -> (c, t))
        internal_templates.Template.Generator.by_collection;
  }

let constraints =
  [
    Schema.Verify.Reachable_from "Root";
    Schema.Verify.Points_to ("YearIndex", "Paper", "Paper");
    Schema.Verify.Points_to ("TopicIndex", "Paper", "Paper");
  ]

let definition =
  Strudel.Site.define ~name:"MFF" ~root_family:"Root"
    ~templates:internal_templates ~constraints
    [ ("site", site_query) ]

(** The data graph integrates the two sources by simple union — both
    wrappers write into one graph (the paper: "other information is
    stored in files in STRUDEL's data definition language"). *)
let data ?entries ?seed () =
  let g, _ = Ddl.parse ~graph_name:"HOME" personal_ddl in
  ignore (Wrappers.Bibtex.load_into g (bibtex_text ?entries ?seed ()));
  g

let build ?entries ?seed () =
  Strudel.Site.build ~data:(data ?entries ?seed ()) definition

let build_both ?entries ?seed () =
  let internal = build ?entries ?seed () in
  let external_ = Strudel.Site.regenerate internal external_templates in
  (internal, external_)
