(** The INRIA-Rodin site (§5.1): a bilingual organization site.

    "Its main feature is that the site has two views: one English and
    one French.  The two sites are cross-linked so that each English
    page is linked to the equivalent page in the French site and vice
    versa.  One StruQL query defines both views and creates the links
    between them."

    The data graph carries bilingual attributes ([title_en]/[title_fr],
    [synopsis_en]/[synopsis_fr]); the single site-definition query
    creates an [En...] and a [Fr...] page family for every entity and
    cross-links the pairs with ["Translation"] edges — both endpoints
    are new nodes, so the mutual links respect StruQL's immutability
    rule. *)

open Sgraph

let project_data =
  [
    ("verso", "The Verso project", "Le projet Verso",
     "Database research", "Recherche en bases de donnees");
    ("rodin", "The Rodin project", "Le projet Rodin",
     "Object databases and views", "Bases de donnees objets et vues");
    ("coq", "The Coq project", "Le projet Coq",
     "Proof assistants", "Assistants de preuve");
    ("para", "The Para project", "Le projet Para",
     "Parallel languages", "Langages paralleles");
  ]

let people_data =
  [
    ("df", "Daniela Florescu", "rodin");
    ("sa", "Serge Abiteboul", "verso");
    ("sc", "Sophie Cluet", "verso");
    ("js", "Jerome Simeon", "rodin");
  ]

let data ?(extra_projects = 0) () =
  let g = Graph.create ~name:"RODIN" () in
  List.iter
    (fun (id, ten, tfr, sen, sfr) ->
      let o = Graph.new_node g id in
      Graph.add_to_collection g "Projects" o;
      Graph.add_edge g o "title_en" (Graph.V (Value.String ten));
      Graph.add_edge g o "title_fr" (Graph.V (Value.String tfr));
      Graph.add_edge g o "synopsis_en" (Graph.V (Value.String sen));
      Graph.add_edge g o "synopsis_fr" (Graph.V (Value.String sfr)))
    project_data;
  for i = 0 to extra_projects - 1 do
    let o = Graph.new_node g (Printf.sprintf "xp%d" i) in
    Graph.add_to_collection g "Projects" o;
    Graph.add_edge g o "title_en"
      (Graph.V (Value.String (Printf.sprintf "Project %d" i)));
    Graph.add_edge g o "title_fr"
      (Graph.V (Value.String (Printf.sprintf "Projet %d" i)));
    Graph.add_edge g o "synopsis_en" (Graph.V (Value.String "A project"));
    Graph.add_edge g o "synopsis_fr" (Graph.V (Value.String "Un projet"))
  done;
  List.iter
    (fun (id, name, proj) ->
      let o = Graph.new_node g id in
      Graph.add_to_collection g "People" o;
      Graph.add_edge g o "name" (Graph.V (Value.String name));
      match Graph.find_node g proj with
      | Some p -> Graph.add_edge g o "project" (Graph.N p)
      | None -> ())
    people_data;
  g

(* One query, two views, cross-linked. *)
let site_query =
  {|INPUT RODIN
// Both roots, mutually translated
{ CREATE EnHome(), FrHome()
  LINK EnHome() -> "Translation" -> FrHome(),
       FrHome() -> "Translation" -> EnHome()
  COLLECT EnHomes(EnHome()), FrHomes(FrHome()) }
// A project page in each language, cross-linked
{ WHERE Projects(j)
  CREATE EnProject(j), FrProject(j)
  LINK EnHome() -> "Project" -> EnProject(j),
       FrHome() -> "Projet" -> FrProject(j),
       EnProject(j) -> "Translation" -> FrProject(j),
       FrProject(j) -> "Translation" -> EnProject(j)
  COLLECT EnProjects(EnProject(j)), FrProjects(FrProject(j))
  { WHERE j -> "title_en" -> t
    LINK EnProject(j) -> "Title" -> t }
  { WHERE j -> "title_fr" -> t
    LINK FrProject(j) -> "Title" -> t }
  { WHERE j -> "synopsis_en" -> s
    LINK EnProject(j) -> "Synopsis" -> s }
  { WHERE j -> "synopsis_fr" -> s
    LINK FrProject(j) -> "Synopsis" -> s }
  { WHERE People(p), p -> "project" -> j
    CREATE EnPerson(p), FrPerson(p)
    LINK EnProject(j) -> "Member" -> EnPerson(p),
         FrProject(j) -> "Membre" -> FrPerson(p),
         EnPerson(p) -> "Translation" -> FrPerson(p),
         FrPerson(p) -> "Translation" -> EnPerson(p),
         EnPerson(p) -> "Project" -> EnProject(j),
         FrPerson(p) -> "Projet" -> FrProject(j)
    COLLECT EnPeople(EnPerson(p)), FrPeople(FrPerson(p))
    { WHERE p -> "name" -> n
      LINK EnPerson(p) -> "Name" -> n, FrPerson(p) -> "Name" -> n } }
}
OUTPUT RODINSITE
|}

let en_home_tpl =
  {|<h1>The Rodin Project</h1>
<p><SFMT @Translation LINK="Version francaise"></p>
<h3>Projects</h3>
<SFMTLIST @Project ORDER=ascend KEY=Title>
|}

let fr_home_tpl =
  {|<h1>Le projet Rodin</h1>
<p><SFMT @Translation LINK="English version"></p>
<h3>Projets</h3>
<SFMTLIST @Projet ORDER=ascend KEY=Title>
|}

let en_project_tpl =
  {|<h1><SFMT @Title></h1>
<p><SFMT @Synopsis></p>
<p><SFMT @Translation LINK="en francais"></p>
<h3>Members</h3>
<SFMTLIST @Member ORDER=ascend KEY=Name>
|}

let fr_project_tpl =
  {|<h1><SFMT @Title></h1>
<p><SFMT @Synopsis></p>
<p><SFMT @Translation LINK="in English"></p>
<h3>Membres</h3>
<SFMTLIST @Membre ORDER=ascend KEY=Name>
|}

let en_person_tpl =
  {|<h1><SFMT @Name></h1>
<p>Project: <SFMT @Project></p>
<p><SFMT @Translation LINK="en francais"></p>
|}

let fr_person_tpl =
  {|<h1><SFMT @Name></h1>
<p>Projet : <SFMT @Projet></p>
<p><SFMT @Translation LINK="in English"></p>
|}

let templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("EnHomes", en_home_tpl);
        ("FrHomes", fr_home_tpl);
        ("EnProjects", en_project_tpl);
        ("FrProjects", fr_project_tpl);
        ("EnPeople", en_person_tpl);
        ("FrPeople", fr_person_tpl);
      ];
    named = [];
  }

(* Every English page must point at its French twin and vice versa. *)
let constraints =
  [
    Schema.Verify.Reachable_from "EnHome";
    Schema.Verify.Points_to ("EnProject", "Translation", "FrProject");
    Schema.Verify.Points_to ("FrProject", "Translation", "EnProject");
    Schema.Verify.Points_to ("EnPerson", "Translation", "FrPerson");
    Schema.Verify.Points_to ("FrPerson", "Translation", "EnPerson");
  ]

let definition =
  Strudel.Site.define ~name:"RODINSITE" ~root_family:"EnHome" ~templates
    ~constraints
    [ ("site", site_query) ]

let build ?extra_projects () =
  Strudel.Site.build ~data:(data ?extra_projects ()) definition
