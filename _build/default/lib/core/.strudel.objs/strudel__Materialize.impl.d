lib/core/materialize.ml: Ast Eval Graph Hashtbl List Oid Option Schema Sgraph Site Skolem Struql Template Value
