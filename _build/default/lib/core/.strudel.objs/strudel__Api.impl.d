lib/core/api.ml: List Mediator Repository Schema Sgraph Site Struql Template Wrappers
