lib/core/materialize.mli: Graph Oid Schema Sgraph Site Skolem Struql
