lib/core/incremental.mli: Graph Hashtbl Oid Sgraph Site
