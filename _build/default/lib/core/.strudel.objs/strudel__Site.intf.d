lib/core/site.mli: Format Graph Oid Schema Sgraph Skolem Struql Template
