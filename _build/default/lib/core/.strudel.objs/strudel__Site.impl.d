lib/core/site.ml: Fmt Graph List Logs Printf Schema Sgraph Skolem String Struql Template
