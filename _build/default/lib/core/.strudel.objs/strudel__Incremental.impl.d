lib/core/incremental.ml: Algo Graph Hashtbl List Oid Schema Sgraph Site Template Value
