(** Convenience façade over the whole system.

    [Strudel.Api] re-exports the pieces a site builder touches — the
    graph model, the wrappers, StruQL, templates, schemas — and offers
    one-call helpers for the common flows.  See [examples/] for
    walkthroughs. *)

module Graph = Sgraph.Graph
module Oid = Sgraph.Oid
module Value = Sgraph.Value
module Ddl = Sgraph.Ddl
module Path = Sgraph.Path
module Skolem = Sgraph.Skolem
module Query = Struql.Parser
module Eval = Struql.Eval
module Pretty = Struql.Pretty
module Site_schema = Schema.Site_schema
module Verify = Schema.Verify
module Templates = Template.Generator
module Bibtex = Wrappers.Bibtex
module Csv = Wrappers.Csv
module Structured_file = Wrappers.Structured_file
module Html_wrapper = Wrappers.Html_wrapper
module Synth = Wrappers.Synth
module Warehouse = Mediator.Warehouse
module Gav = Mediator.Gav
module Source = Mediator.Source
module Store = Repository.Store

(** Parse and evaluate a StruQL query over a graph. *)
let query (g : Graph.t) (src : string) : Graph.t = Eval.run_string g src

(** Evaluate a query against a repository: the query's INPUT names are
    resolved to stored graphs (several inputs evaluate over their
    union, since graphs of one database may share objects), and the
    result is stored under the query's OUTPUT name.  This is the
    database-style entry point — [INPUT BIBTEX, PERSONAL ... OUTPUT
    HomePage] reads two catalogued graphs and catalogues the result. *)
let query_repo ?options (repo : Store.t) (src : string) : Graph.t =
  let q = Struql.Parser.parse src in
  let input =
    match q.Struql.Ast.input with
    | [ one ] -> Store.get repo one
    | names ->
      let merged = Graph.create ~name:"inputs" () in
      List.iter
        (fun n -> Graph.merge_into ~dst:merged ~src:(Store.get repo n))
        names;
      merged
  in
  let out = Eval.run ?options input q in
  Store.put repo out;
  out

(** Load a data graph from DDL text. *)
let load_ddl ?graph_name src : Graph.t = fst (Ddl.parse ?graph_name src)

(** Load a BibTeX bibliography as a data graph. *)
let load_bibtex ?graph_name src : Graph.t = fst (Bibtex.load ?graph_name src)

(** Build a complete site: data + query + templates → pages. *)
let build_site ~name ~root_family ~query:(q : string)
    ~templates (data : Graph.t) : Site.built =
  Site.build ~data
    (Site.define ~name ~root_family ~templates [ ("site", q) ])

(** Write a built site's pages to a directory. *)
let write ~dir (b : Site.built) =
  Template.Generator.write_site ~dir b.Site.site
