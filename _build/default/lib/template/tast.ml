(** Abstract syntax of STRUDEL's HTML-template language (Fig. 6).

    A template is plain HTML extended with three expressions, each of
    which produces plain HTML text:

    - the format expression [<SFMT @attr ...>] maps an attribute
      expression to an HTML value using type-specific rules;
    - the conditional [<SIF cond> ... <SELSE> ... </SIF>];
    - the enumeration [<SFOR v IN @attr ...> ... </SFOR>], which binds
      [v] to each value of the attribute;
    - plus the [<SFMTLIST @attr ...>] shorthand for an [<UL>] of all
      values.

    An attribute expression [@a.b.c] performs bounded traversal of the
    site graph starting from the current object (or from an [SFOR]
    variable when the first segment names one).  Directives: [EMBED]
    forces an internal object to be embedded rather than linked;
    [LINK=tag] emits a link whose anchor text is the given string or
    attribute expression; [ORDER=ascend|descend] with optional
    [KEY=attr] sorts values; [DELIM="s"] separates multiple values. *)

type attr_expr = string list
(** [@a.b.c] = [["a"; "b"; "c"]] *)

type link_tag = Tag_string of string | Tag_attr of attr_expr

type format_mode =
  | F_default  (** type-specific rules; internal objects become links *)
  | F_embed    (** embed the HTML value of an internal object *)
  | F_link of link_tag option
      (** render as a link; the tag is the anchor text *)

type order = Ascend | Descend

type directives = {
  format : format_mode;
  order : order option;
  key : attr_expr option;
  delim : string option;
}

let default_directives =
  { format = F_default; order = None; key = None; delim = None }

type operand =
  | A_attr of attr_expr
  | A_const of Sgraph.Value.t

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | C_cmp of cmp_op * operand * operand
  | C_nonnull of attr_expr  (** [<SIF @attr>]: the attribute exists *)
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond

type t = node list

and node =
  | Text of string                                  (** plain HTML *)
  | Fmt of attr_expr * directives                   (** [<SFMT>] *)
  | Fmt_list of attr_expr * directives              (** [<SFMTLIST>] *)
  | If of cond * t * t                              (** [<SIF>] *)
  | For of string * attr_expr * directives * t      (** [<SFOR>] *)

let rec pp_cond ppf = function
  | C_cmp (op, a, b) ->
    let ops =
      match op with
      | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">"
      | Ge -> ">="
    in
    Fmt.pf ppf "%a %s %a" pp_operand a ops pp_operand b
  | C_nonnull ae -> pp_attr_expr ppf ae
  | C_and (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_cond a pp_cond b
  | C_or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_cond a pp_cond b
  | C_not c -> Fmt.pf ppf "NOT (%a)" pp_cond c

and pp_operand ppf = function
  | A_attr ae -> pp_attr_expr ppf ae
  | A_const v -> Sgraph.Value.pp ppf v

and pp_attr_expr ppf ae = Fmt.pf ppf "@%s" (String.concat "." ae)
