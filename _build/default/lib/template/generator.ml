(** The HTML generator (§2.5, §4).

    Produces the browsable Web site from a site graph and a set of HTML
    templates.  For every internal object the generator selects a
    template: (1) an object-specific template, (2) the value of the
    object's [HTML-template] attribute, or (3) the template associated
    with a collection the object belongs to; objects with none get a
    generic property-sheet rendering.

    The choice to realize internal objects as pages or as page
    components is delayed until generation: an object referenced with
    the default format becomes a separate page (and a link to it is
    emitted); the [EMBED] directive embeds the object's HTML value in
    the referencing page instead. *)

open Sgraph

exception Generator_error of string

type template_set = {
  by_object : (string * string) list;
      (** object name → template text (object-specific templates) *)
  by_collection : (string * string) list;
      (** collection name → template text *)
  named : (string * string) list;
      (** template name → text, for the [HTML-template] attribute *)
}

let empty_templates = { by_object = []; by_collection = []; named = [] }

type page = {
  obj : Oid.t;
  url : string;
  title : string;
  html : string;  (** full page, wrapped *)
  body : string;  (** the template's output alone *)
}

type site = {
  pages : page list;
  graph : Graph.t;
}

(* --- URL assignment --- *)

let slug name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' ->
        Buffer.add_char buf c
      | ' ' | '.' | '/' -> Buffer.add_char buf '_'
      | _ -> ())
    name;
  let s = Buffer.contents buf in
  if s = "" then "page" else s

(* --- Anchor text for links to internal objects --- *)

let anchor_attrs = [ "title"; "name"; "Name"; "label"; "Year"; "year" ]

let default_anchor g o =
  let rec first = function
    | [] -> Teval.escape_html (Oid.name o)
    | a :: rest -> (
        match Graph.attr_value g o a with
        | Some v -> Teval.escape_html (Value.to_display_string v)
        | None -> first rest)
  in
  first anchor_attrs

(* --- Template selection --- *)

type compiled = { cache : (string, Tast.t) Hashtbl.t }

let compile_cached c key text =
  match Hashtbl.find_opt c.cache key with
  | Some t -> t
  | None ->
    let t = Tparse.parse text in
    Hashtbl.add c.cache key t;
    t

let select_template c (ts : template_set) g o : Tast.t option =
  match List.assoc_opt (Oid.name o) ts.by_object with
  | Some text -> Some (compile_cached c ("obj:" ^ Oid.name o) text)
  | None -> (
      let from_attr =
        match Graph.attr_value g o "HTML-template" with
        | Some (Value.String n) | Some (Value.File (Value.Html_file, n)) ->
          (match List.assoc_opt n ts.named with
           | Some text -> Some (compile_cached c ("named:" ^ n) text)
           | None ->
             raise (Generator_error ("unknown template name " ^ n)))
        | Some _ | None -> None
      in
      match from_attr with
      | Some t -> Some t
      | None ->
        List.find_map
          (fun coll ->
            match List.assoc_opt coll ts.by_collection with
            | Some text -> Some (compile_cached c ("coll:" ^ coll) text)
            | None -> None)
          (Graph.collections_of g o))

(* Generic property-sheet rendering for objects without a template. *)
let default_render render_target g o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s</h2>\n<dl>\n" (Teval.escape_html (Oid.name o)));
  List.iter
    (fun (l, tgt) ->
      Buffer.add_string buf
        (Printf.sprintf "<dt>%s</dt><dd>%s</dd>\n" (Teval.escape_html l)
           (render_target tgt)))
    (Graph.out_edges g o);
  Buffer.add_string buf "</dl>\n";
  Buffer.contents buf

let wrap_page ~title body =
  if
    String.length body >= 5
    && String.lowercase_ascii (String.sub body 0 5) = "<html"
  then body
  else
    Printf.sprintf
      "<html>\n<head><title>%s</title></head>\n<body>\n%s\n</body>\n</html>\n"
      (Teval.escape_html title) body

let max_embed_depth = 32

(** Generate the browsable site.  [roots] are the objects realized as
    pages up front; any object referenced with the default (link)
    format from an emitted page also becomes a page. *)
let generate ?(file_loader = fun _ -> None) ?(templates = empty_templates)
    (g : Graph.t) ~(roots : Oid.t list) : site =
  let compiled = { cache = Hashtbl.create 16 } in
  let urls : string Oid.Tbl.t = Oid.Tbl.create 64 in
  let used_urls = Hashtbl.create 64 in
  let queue = Queue.create () in
  let queued = Oid.Tbl.create 64 in
  let ensure_page o =
    match Oid.Tbl.find_opt urls o with
    | Some u -> u
    | None ->
      let base = slug (Oid.name o) in
      let rec uniq n =
        let candidate =
          if n = 0 then base ^ ".html"
          else Printf.sprintf "%s_%d.html" base n
        in
        if Hashtbl.mem used_urls candidate then uniq (n + 1) else candidate
      in
      let u = uniq 0 in
      Hashtbl.add used_urls u ();
      Oid.Tbl.add urls o u;
      if not (Oid.Tbl.mem queued o) then begin
        Oid.Tbl.add queued o ();
        Queue.add o queue
      end;
      u
  in
  let depth = ref 0 in
  let embedding = Oid.Tbl.create 8 in
  let rec render_object ctx mode o =
    match mode with
    | Teval.Link_to anchor ->
      let url = ensure_page o in
      let anchor =
        match anchor with Some a -> a | None -> default_anchor g o
      in
      Teval.render_link ~href:url ~anchor
    | Teval.Embed ->
      if Oid.Tbl.mem embedding o || !depth > max_embed_depth then
        (* embedding cycle: fall back to a link *)
        render_object ctx (Teval.Link_to None) o
      else begin
        Oid.Tbl.add embedding o ();
        incr depth;
        let body = render_body ctx o in
        decr depth;
        Oid.Tbl.remove embedding o;
        body
      end
  and render_body ctx o =
    match select_template compiled templates g o with
    | Some t -> Teval.render { ctx with Teval.vars = [] } t o
    | None ->
      default_render
        (fun tgt ->
          Teval.render_target ctx o Tast.default_directives tgt)
        g o
  in
  let ctx =
    { Teval.graph = g; vars = []; render_object; file_loader }
  in
  List.iter (fun o -> ignore (ensure_page o)) roots;
  let pages = ref [] in
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    let url = Oid.Tbl.find urls o in
    let body = render_body ctx o in
    let title =
      match Graph.attr_value g o "title" with
      | Some v -> Value.to_display_string v
      | None -> Oid.name o
    in
    pages :=
      { obj = o; url; title; html = wrap_page ~title body; body } :: !pages
  done;
  { pages = List.rev !pages; graph = g }

(** Render a single object's page without materializing the rest of the
    site: links to internal objects get their deterministic URLs (slug
    of the object name) but the linked pages are not generated.  This
    is the rendering primitive of the click-time evaluator. *)
let render_page ?(file_loader = fun _ -> None) ?(templates = empty_templates)
    (g : Graph.t) (o : Oid.t) : page =
  let compiled = { cache = Hashtbl.create 16 } in
  let depth = ref 0 in
  let embedding = Oid.Tbl.create 8 in
  let rec render_object ctx mode o' =
    match mode with
    | Teval.Link_to anchor ->
      let anchor =
        match anchor with Some a -> a | None -> default_anchor g o'
      in
      Teval.render_link ~href:(slug (Oid.name o') ^ ".html") ~anchor
    | Teval.Embed ->
      if Oid.Tbl.mem embedding o' || !depth > max_embed_depth then
        render_object ctx (Teval.Link_to None) o'
      else begin
        Oid.Tbl.add embedding o' ();
        incr depth;
        let body = render_body ctx o' in
        decr depth;
        Oid.Tbl.remove embedding o';
        body
      end
  and render_body ctx o' =
    match select_template compiled templates g o' with
    | Some t -> Teval.render { ctx with Teval.vars = [] } t o'
    | None ->
      default_render
        (fun tgt -> Teval.render_target ctx o' Tast.default_directives tgt)
        g o'
  in
  let ctx = { Teval.graph = g; vars = []; render_object; file_loader } in
  let body = render_body ctx o in
  let title =
    match Graph.attr_value g o "title" with
    | Some v -> Value.to_display_string v
    | None -> Oid.name o
  in
  {
    obj = o;
    url = slug (Oid.name o) ^ ".html";
    title;
    html = wrap_page ~title body;
    body;
  }

let page_count site = List.length site.pages

let find_page site url = List.find_opt (fun p -> p.url = url) site.pages

let page_of_object site o =
  List.find_opt (fun p -> Oid.equal p.obj o) site.pages

(** Write all pages below [dir] (created if missing). *)
let write_site ~dir site =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun p ->
      let oc = open_out (Filename.concat dir p.url) in
      output_string oc p.html;
      close_out oc)
    site.pages

let total_bytes site =
  List.fold_left (fun n p -> n + String.length p.html) 0 site.pages
