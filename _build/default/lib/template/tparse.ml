(** Parser for the HTML-template language.

    Plain HTML passes through verbatim; the parser recognizes the
    [<SFMT ...>], [<SFMTLIST ...>], [<SIF ...> ... <SELSE> ... </SIF>]
    and [<SFOR v IN ...> ... </SFOR>] forms (tag names are
    case-insensitive).  Quoted strings inside a tag may contain [>]. *)

open Sgraph

exception Template_error of string

(* --- Raw tag scanning --- *)

type raw =
  | R_text of string
  | R_fmt of string        (* tag body after the keyword *)
  | R_fmtlist of string
  | R_if of string
  | R_else
  | R_endif
  | R_for of string
  | R_endfor

let keyword_at src i kw =
  (* matches "<KW" at position i, case-insensitive, followed by a
     delimiter *)
  let n = String.length src and k = String.length kw in
  i + 1 + k <= n
  && src.[i] = '<'
  && String.lowercase_ascii (String.sub src (i + 1) k)
     = String.lowercase_ascii kw
  && (i + 1 + k = n
      ||
      let c = src.[i + 1 + k] in
      c = ' ' || c = '\t' || c = '\n' || c = '>' || c = '\r')

(* Find the '>' closing a tag starting at [i] ('<'), skipping quoted
   strings.  A '>' that begins '>=' or is surrounded by spaces is the
   greater-than operator of an SIF condition, not the tag close (write
   comparisons as [a > b], with spaces).  Returns the index of '>'. *)
let find_tag_end src i =
  let n = String.length src in
  let rec go j in_quote =
    if j >= n then raise (Template_error "unterminated template tag")
    else
      match src.[j] with
      | '"' -> go (j + 1) (not in_quote)
      | '\\' when in_quote && j + 1 < n -> go (j + 2) in_quote
      | '>' when not in_quote ->
        let is_ge = j + 1 < n && src.[j + 1] = '=' in
        let is_spaced_gt =
          j > 0 && src.[j - 1] = ' ' && j + 1 < n && src.[j + 1] = ' '
        in
        if is_ge then go (j + 2) in_quote
        else if is_spaced_gt then go (j + 1) in_quote
        else j
      | _ -> go (j + 1) in_quote
  in
  go i false

let scan src =
  let n = String.length src in
  let raws = ref [] in
  let text_start = ref 0 in
  let flush_text upto =
    if upto > !text_start then
      raws := R_text (String.sub src !text_start (upto - !text_start)) :: !raws
  in
  let i = ref 0 in
  while !i < n do
    if src.[!i] = '<' then begin
      let tag kw mk =
        let e = find_tag_end src !i in
        let body_start = !i + 1 + String.length kw in
        let body = String.sub src body_start (e - body_start) in
        flush_text !i;
        raws := mk body :: !raws;
        i := e + 1;
        text_start := !i;
        true
      in
      let matched =
        if keyword_at src !i "SFMTLIST" then tag "SFMTLIST" (fun b -> R_fmtlist b)
        else if keyword_at src !i "SFMT" then tag "SFMT" (fun b -> R_fmt b)
        else if keyword_at src !i "SIF" then tag "SIF" (fun b -> R_if b)
        else if keyword_at src !i "SELSE" then tag "SELSE" (fun _ -> R_else)
        else if keyword_at src !i "/SIF" then tag "/SIF" (fun _ -> R_endif)
        else if keyword_at src !i "SFOR" then tag "SFOR" (fun b -> R_for b)
        else if keyword_at src !i "/SFOR" then tag "/SFOR" (fun _ -> R_endfor)
        else false
      in
      if not matched then incr i
    end
    else incr i
  done;
  flush_text n;
  List.rev !raws

(* --- Tag-body parsing (uses the shared tokenizer) --- *)

let puncts = [ "@"; "."; "("; ")"; "="; "!="; "<="; ">="; "<"; ">"; "," ]

let tokens_of body =
  try Lex.Stream.of_tokens (Lex.tokenize ~ident_dash:true ~puncts body)
  with Lex.Lex_error (msg, _) -> raise (Template_error msg)

let parse_attr_expr st =
  Lex.Stream.eat_punct st "@";
  let acc = ref [ Lex.Stream.expect_ident st ] in
  while Lex.Stream.accept_punct st "." do
    acc := Lex.Stream.expect_ident st :: !acc
  done;
  List.rev !acc

let parse_bare_attr_expr st =
  (* KEY=Year admits the '@' to be omitted *)
  if Lex.Stream.accept_punct st "@" then begin
    let acc = ref [ Lex.Stream.expect_ident st ] in
    while Lex.Stream.accept_punct st "." do
      acc := Lex.Stream.expect_ident st :: !acc
    done;
    List.rev !acc
  end
  else begin
    let acc = ref [ Lex.Stream.expect_ident st ] in
    while Lex.Stream.accept_punct st "." do
      acc := Lex.Stream.expect_ident st :: !acc
    done;
    List.rev !acc
  end

let parse_directives st =
  let d = ref Tast.default_directives in
  let fin = ref false in
  while not !fin do
    match Lex.Stream.peek st with
    | Lex.Ident s -> begin
      ignore (Lex.Stream.advance st);
      match String.uppercase_ascii s with
      | "EMBED" -> d := { !d with Tast.format = Tast.F_embed }
      | "FORMAT" ->
        (match Lex.Stream.advance st with
         | Lex.Punct "=" -> ()
         | _ -> raise (Template_error "expected '=' after FORMAT"));
        let v = Lex.Stream.expect_ident st in
        (match String.uppercase_ascii v with
         | "EMBED" -> d := { !d with Tast.format = Tast.F_embed }
         | "LINK" -> d := { !d with Tast.format = Tast.F_link None }
         | _ -> raise (Template_error ("unknown FORMAT " ^ v)))
      | "LINK" ->
        if Lex.Stream.accept_punct st "=" then begin
          match Lex.Stream.peek st with
          | Lex.Str s ->
            ignore (Lex.Stream.advance st);
            d :=
              { !d with Tast.format = Tast.F_link (Some (Tast.Tag_string s)) }
          | _ ->
            let ae = parse_bare_attr_expr st in
            d :=
              { !d with Tast.format = Tast.F_link (Some (Tast.Tag_attr ae)) }
        end
        else d := { !d with Tast.format = Tast.F_link None }
      | "ORDER" ->
        (match Lex.Stream.advance st with
         | Lex.Punct "=" -> ()
         | _ -> raise (Template_error "expected '=' after ORDER"));
        let v = Lex.Stream.expect_ident st in
        (match String.lowercase_ascii v with
         | "ascend" | "asc" | "ascending" ->
           d := { !d with Tast.order = Some Tast.Ascend }
         | "descend" | "desc" | "descending" ->
           d := { !d with Tast.order = Some Tast.Descend }
         | _ -> raise (Template_error ("unknown ORDER " ^ v)))
      | "KEY" ->
        (match Lex.Stream.advance st with
         | Lex.Punct "=" -> ()
         | _ -> raise (Template_error "expected '=' after KEY"));
        d := { !d with Tast.key = Some (parse_bare_attr_expr st) }
      | "DELIM" ->
        (match Lex.Stream.advance st with
         | Lex.Punct "=" -> ()
         | _ -> raise (Template_error "expected '=' after DELIM"));
        (match Lex.Stream.advance st with
         | Lex.Str s -> d := { !d with Tast.delim = Some s }
         | _ -> raise (Template_error "DELIM expects a string"))
      | other -> raise (Template_error ("unknown directive " ^ other))
    end
    | Lex.Eof -> fin := true
    | tok ->
      raise
        (Template_error (Fmt.str "unexpected %a in directives" Lex.pp_token tok))
  done;
  !d

let parse_fmt_body body =
  let st = tokens_of body in
  let ae = parse_attr_expr st in
  let d = parse_directives st in
  (ae, d)

(* Conditions: Expr Op Expr | @attr | combinations with AND OR NOT. *)
let parse_operand st =
  match Lex.Stream.peek st with
  | Lex.Punct "@" -> Tast.A_attr (parse_attr_expr st)
  | Lex.Str s ->
    ignore (Lex.Stream.advance st);
    Tast.A_const (Value.String s)
  | Lex.Int_lit i ->
    ignore (Lex.Stream.advance st);
    Tast.A_const (Value.Int i)
  | Lex.Float_lit f ->
    ignore (Lex.Stream.advance st);
    Tast.A_const (Value.Float f)
  | Lex.Ident s -> begin
    ignore (Lex.Stream.advance st);
    match String.uppercase_ascii s with
    | "NULL" -> Tast.A_const Value.Null
    | "TRUE" -> Tast.A_const (Value.Bool true)
    | "FALSE" -> Tast.A_const (Value.Bool false)
    | _ ->
      (* a bare identifier is an attribute expression without @ *)
      Tast.A_attr [ s ]
  end
  | tok ->
    raise (Template_error (Fmt.str "expected an operand, found %a"
                             Lex.pp_token tok))

let parse_cmp_op st =
  match Lex.Stream.advance st with
  | Lex.Punct "=" -> Some Tast.Eq
  | Lex.Punct "!=" -> Some Tast.Ne
  | Lex.Punct "<" -> Some Tast.Lt
  | Lex.Punct "<=" -> Some Tast.Le
  | Lex.Punct ">" -> Some Tast.Gt
  | Lex.Punct ">=" -> Some Tast.Ge
  | _ -> None

let rec parse_cond st =
  let left = parse_cond_and st in
  if Lex.Stream.accept_ident st "or" then Tast.C_or (left, parse_cond st)
  else left

and parse_cond_and st =
  let left = parse_cond_atom st in
  if Lex.Stream.accept_ident st "and" then
    Tast.C_and (left, parse_cond_and st)
  else left

and parse_cond_atom st =
  if Lex.Stream.accept_ident st "not" then Tast.C_not (parse_cond_atom st)
  else if Lex.Stream.accept_punct st "(" then begin
    let c = parse_cond st in
    Lex.Stream.eat_punct st ")";
    c
  end
  else begin
    let a = parse_operand st in
    match Lex.Stream.peek st with
    | Lex.Punct ("=" | "!=" | "<" | "<=" | ">" | ">=") ->
      let op =
        match parse_cmp_op st with
        | Some op -> op
        | None -> assert false
      in
      let b = parse_operand st in
      Tast.C_cmp (op, a, b)
    | _ ->
      (match a with
       | Tast.A_attr ae -> Tast.C_nonnull ae
       | Tast.A_const _ ->
         raise (Template_error "constant condition without comparison"))
  end

let parse_if_body body =
  let st = tokens_of body in
  let c = parse_cond st in
  if not (Lex.Stream.at_eof st) then
    raise (Template_error "trailing tokens in SIF condition");
  c

let parse_for_body body =
  let st = tokens_of body in
  let v = Lex.Stream.expect_ident st in
  (match Lex.Stream.advance st with
   | Lex.Ident s when String.lowercase_ascii s = "in" -> ()
   | _ -> raise (Template_error "expected IN in SFOR"));
  let ae = parse_attr_expr st in
  let d = parse_directives st in
  (v, ae, d)

(* --- Structure building --- *)

let parse (src : string) : Tast.t =
  let raws = scan src in
  (* recursive descent over the raw tag list *)
  let rec nodes acc raws =
    match raws with
    | [] -> (List.rev acc, [])
    | R_text s :: rest -> nodes (Tast.Text s :: acc) rest
    | R_fmt body :: rest ->
      let ae, d = parse_fmt_body body in
      nodes (Tast.Fmt (ae, d) :: acc) rest
    | R_fmtlist body :: rest ->
      let ae, d = parse_fmt_body body in
      nodes (Tast.Fmt_list (ae, d) :: acc) rest
    | R_if body :: rest ->
      let c = parse_if_body body in
      let then_, rest = nodes [] rest in
      (match rest with
       | R_else :: rest ->
         let else_, rest = nodes [] rest in
         (match rest with
          | R_endif :: rest ->
            nodes (Tast.If (c, then_, else_) :: acc) rest
          | _ -> raise (Template_error "missing </SIF>"))
       | R_endif :: rest -> nodes (Tast.If (c, then_, []) :: acc) rest
       | _ -> raise (Template_error "missing </SIF>"))
    | R_for body :: rest ->
      let v, ae, d = parse_for_body body in
      let inner, rest = nodes [] rest in
      (match rest with
       | R_endfor :: rest -> nodes (Tast.For (v, ae, d, inner) :: acc) rest
       | _ -> raise (Template_error "missing </SFOR>"))
    | (R_else | R_endif | R_endfor) :: _ -> (List.rev acc, raws)
  in
  let t, rest = nodes [] raws in
  (match rest with
   | [] -> ()
   | _ -> raise (Template_error "unbalanced SELSE/</SIF>/</SFOR>"));
  t
