(** Parser for the HTML-template language (Fig. 6).

    Plain HTML passes through verbatim; the parser recognizes
    [<SFMT ...>], [<SFMTLIST ...>], [<SIF ...> ... <SELSE> ... </SIF>]
    and [<SFOR v IN ...> ... </SFOR>] (tag names case-insensitive).
    Quoted strings inside a tag may contain [>]; write [>]/[>=]
    comparisons with surrounding spaces so they are not read as the tag
    close. *)

exception Template_error of string

val parse : string -> Tast.t
