lib/template/tparse.ml: Fmt Lex List Sgraph String Tast Value
