lib/template/teval.ml: Buffer Graph List Oid Printf Sgraph String Tast Value
