lib/template/generator.ml: Buffer Filename Graph Hashtbl List Oid Printf Queue Sgraph String Sys Tast Teval Tparse Value
