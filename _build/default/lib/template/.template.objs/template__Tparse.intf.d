lib/template/tparse.mli: Tast
