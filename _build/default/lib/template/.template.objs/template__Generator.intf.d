lib/template/generator.mli: Graph Oid Sgraph
