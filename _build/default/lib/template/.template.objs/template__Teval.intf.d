lib/template/teval.mli: Graph Oid Sgraph Tast Value
