lib/template/tast.ml: Fmt Sgraph String
