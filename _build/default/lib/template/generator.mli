(** The HTML generator (§2.5, §4).

    Produces the browsable Web site from a site graph and a set of HTML
    templates.  For every internal object the generator selects a
    template: (1) an object-specific template, (2) the value of the
    object's [HTML-template] attribute — so the {e data} can choose the
    presentation — or (3) the template of a collection the object
    belongs to; objects with none get a generic property-sheet
    rendering.

    The choice to realize internal objects as pages or as page
    components is delayed until generation: an object referenced with
    the default format becomes a separate page (a link to it is
    emitted); the [EMBED] directive embeds the object's HTML value in
    the referencing page instead. *)

open Sgraph

exception Generator_error of string

type template_set = {
  by_object : (string * string) list;
      (** object name → template text (object-specific templates) *)
  by_collection : (string * string) list;
      (** collection name → template text *)
  named : (string * string) list;
      (** template name → text, for the [HTML-template] attribute *)
}

val empty_templates : template_set

type page = {
  obj : Oid.t;
  url : string;
  title : string;
  html : string;  (** the full page, wrapped in scaffold if needed *)
  body : string;  (** the template's output alone *)
}

type site = {
  pages : page list;
  graph : Graph.t;
}

val slug : string -> string
(** URL-safe name fragment used for page file names. *)

val default_anchor : Graph.t -> Oid.t -> string
(** Anchor text for a link to an object: its [title]/[name]/... if
    present, else the object name (HTML-escaped). *)

val generate :
  ?file_loader:(string -> string option) ->
  ?templates:template_set ->
  Graph.t ->
  roots:Oid.t list ->
  site
(** Generate the browsable site.  [roots] are realized as pages up
    front; any object referenced with the default (link) format from an
    emitted page also becomes a page, transitively.  [file_loader]
    supplies the contents of text/HTML file values for inlining. *)

val render_page :
  ?file_loader:(string -> string option) ->
  ?templates:template_set ->
  Graph.t -> Oid.t -> page
(** Render a single object's page without materializing the rest of the
    site — the rendering primitive of the click-time evaluator.  Links
    get their deterministic URLs but linked pages are not generated. *)

val page_count : site -> int
val find_page : site -> string -> page option
val page_of_object : site -> Oid.t -> page option

val write_site : dir:string -> site -> unit
(** Write all pages below [dir] (created if missing). *)

val total_bytes : site -> int
