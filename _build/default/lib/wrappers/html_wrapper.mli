(** HTML wrapper: maps existing HTML pages into the data graph (the
    paper's hand-written wrappers for plain HTML pages — the route used
    to build the CNN demonstration site from crawled pages).

    Structural extraction, not a full parse: recovers [<title>],
    headings, anchors ([href] + anchor text) and the visible text,
    producing an object with [title], [heading], [link] (nested
    objects with [href]/[anchor]), [image] and [text] attributes. *)

open Sgraph

val strip_tags : string -> string
(** Remove markup and collapse whitespace. *)

val load_page : ?collection:string -> Graph.t -> name:string -> string -> Oid.t
(** Wrap one HTML page as an object of [collection] (default
    ["Pages"]). *)

val load_pages :
  ?graph_name:string -> ?collection:string -> (string * string) list ->
  Graph.t * Oid.t list
