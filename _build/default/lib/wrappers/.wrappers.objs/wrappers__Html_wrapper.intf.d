lib/wrappers/html_wrapper.mli: Graph Oid Sgraph
