lib/wrappers/structured_file.mli: Graph Oid Sgraph
