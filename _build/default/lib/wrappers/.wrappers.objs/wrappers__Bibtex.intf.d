lib/wrappers/bibtex.mli: Graph Oid Sgraph
