lib/wrappers/csv.ml: Buffer Graph List Oid Sgraph String Value
