lib/wrappers/structured_file.ml: Graph List Sgraph String Value
