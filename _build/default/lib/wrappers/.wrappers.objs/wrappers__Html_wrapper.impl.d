lib/wrappers/html_wrapper.ml: Buffer Graph List Oid Sgraph String Value
