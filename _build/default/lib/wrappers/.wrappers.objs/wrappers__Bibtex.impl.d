lib/wrappers/bibtex.ml: Buffer Filename Graph List Printf Sgraph String Value
