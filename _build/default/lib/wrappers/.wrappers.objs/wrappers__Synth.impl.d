lib/wrappers/synth.ml: Array Buffer Char Graph Int64 List Printf Sgraph String Value
