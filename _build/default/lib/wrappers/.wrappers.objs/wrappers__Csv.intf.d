lib/wrappers/csv.mli: Graph Oid Sgraph
