lib/wrappers/synth.mli: Graph Sgraph
