(** Relational wrapper: loads CSV exports of relational tables into the
    graph model (the paper's "small relational databases that contain
    personnel and organizational data").

    Each row becomes an object in a collection named after the table;
    each non-empty cell becomes an attribute edge whose value is read
    with {!Sgraph.Value.of_literal}.  Empty cells produce {e no} edge —
    the natural encoding of missing attributes in the semistructured
    model.  Cells referencing other rows ([&key]) become object
    references (foreign keys). *)

open Sgraph

exception Csv_error of string * int  (** message, line *)

(* RFC-4180-ish parsing: quoted fields may contain commas, newlines and
   doubled quotes. *)
let parse_rows (src : string) : string list list =
  let n = String.length src in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let push_row () =
    push_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = src.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && src.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        if c = '\n' then incr line;
        Buffer.add_char buf c;
        incr i
      end
    end
    else
      match c with
      | '"' ->
        if Buffer.length buf = 0 then begin
          in_quotes := true;
          incr i
        end
        else raise (Csv_error ("quote inside unquoted field", !line))
      | ',' ->
        push_field ();
        incr i
      | '\r' -> incr i
      | '\n' ->
        push_row ();
        incr line;
        incr i
      | c ->
        Buffer.add_char buf c;
        incr i
  done;
  if !in_quotes then raise (Csv_error ("unterminated quoted field", !line));
  if Buffer.length buf > 0 || !fields <> [] then push_row ();
  (* drop fully empty trailing rows *)
  List.rev !rows |> List.filter (fun r -> r <> [ "" ] && r <> [])

type table = {
  name : string;
  headers : string list;
  rows : string list list;
}

let table_of_string ~name src =
  match parse_rows src with
  | [] -> { name; headers = []; rows = [] }
  | headers :: rows -> { name; headers; rows }

(** Load several tables into [g] at once: all rows of all tables are
    created first, then cells are added, so [&name] references may
    point forwards and across tables (a people table referencing an
    orgs table that references the people back).  Returns the created
    oids per table, in row order. *)
let rec load_tables ?key g (tables : table list) : Oid.t list list =
  (* first pass: create every object of every table *)
  let created =
    List.map
      (fun t ->
        let key_idx =
          match key with
          | None -> 0
          | Some k -> (
              match List.find_index (fun h -> h = k) t.headers with
              | Some i -> i
              | None -> 0)
        in
        List.map
          (fun row ->
            let name =
              match List.nth_opt row key_idx with
              | Some v when v <> "" -> v
              | _ -> t.name ^ "_row"
            in
            let o = Graph.new_node g name in
            Graph.add_to_collection g t.name o;
            (o, row))
          t.rows)
      tables
  in
  let deferred = ref [] in
  List.iter2
    (fun t objs ->
      List.iter
        (fun (o, row) ->
          List.iteri
            (fun i cell ->
              if cell <> "" then
                match List.nth_opt t.headers i with
                | None | Some "" -> ()
                | Some h ->
                  if String.length cell > 1 && cell.[0] = '&' then
                    deferred :=
                      (o, h, String.sub cell 1 (String.length cell - 1))
                      :: !deferred
                  else
                    List.iter
                      (fun part ->
                        let part = String.trim part in
                        if part <> "" then
                          Graph.add_edge g o h
                            (Graph.V (Value.of_literal part)))
                      (String.split_on_char ';' cell))
            row)
        objs)
    tables created;
  List.iter
    (fun (o, h, refname) ->
      match Graph.find_node g refname with
      | Some o' -> Graph.add_edge g o h (Graph.N o')
      | None ->
        (* dangling foreign key: keep it as a string, as a real
           integration would surface it for cleaning *)
        Graph.add_edge g o h (Graph.V (Value.String ("&" ^ refname))))
    (List.rev !deferred);
  List.map (fun objs -> List.map fst objs) created

(** Load a single table; see {!load_tables}.  [key] names the column
    whose value becomes the object's name (default: first column). *)
and load_table ?key g (t : table) : Oid.t list =
  (match key with
   | Some k when not (List.mem k t.headers) ->
     raise (Csv_error ("no column named " ^ k, 1))
   | _ -> ());
  match load_tables ?key g [ t ] with
  | [ os ] -> os
  | _ -> assert false

let load ?(graph_name = "RDB") ?key ~name src =
  let g = Graph.create ~name:graph_name () in
  let os = load_table ?key g (table_of_string ~name src) in
  (g, os)
