(** The data repository for semistructured data (§2.2).

    Stores data graphs and site graphs.  Unlike a traditional system,
    the repository cannot rely on schema information to organize data;
    instead it fully indexes both schema and data — the indexes live in
    {!Sgraph.Graph} (collection and attribute extents, a global value
    index, the schema index of all collection and attribute names) and
    are rebuilt when a graph is loaded.

    Persistence uses the textual data-definition language, so a dump is
    human-readable and exchangeable with wrappers. *)

open Sgraph

type t = {
  mutable graphs : (string * Graph.t) list;  (* newest first *)
}

exception Not_found_graph of string

let create () = { graphs = [] }

let put repo g =
  repo.graphs <- (Graph.name g, g) :: List.remove_assoc (Graph.name g) repo.graphs

let get repo name =
  match List.assoc_opt name repo.graphs with
  | Some g -> g
  | None -> raise (Not_found_graph name)

let get_opt repo name = List.assoc_opt name repo.graphs
let names repo = List.map fst repo.graphs
let mem repo name = List.mem_assoc name repo.graphs

let remove repo name =
  repo.graphs <- List.remove_assoc name repo.graphs

(* --- Persistence --- *)

let dump_graph g = Ddl.print g

let load_graph ~name text =
  let g, _dirs = Ddl.parse ~graph_name:name text in
  g

(** Save every graph below [dir]: [`Ddl] writes human-readable
    [<name>.ddl] text, [`Binary] the compact [<name>.sgbin] format of
    {!Binary}. *)
let save_dir ?(format = `Ddl) repo ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, g) ->
      match format with
      | `Ddl ->
        let oc = open_out (Filename.concat dir (name ^ ".ddl")) in
        output_string oc (dump_graph g);
        close_out oc
      | `Binary -> Binary.save ~path:(Filename.concat dir (name ^ ".sgbin")) g)
    repo.graphs

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(** Load every [*.ddl] and [*.sgbin] file of [dir] into a fresh
    repository. *)
let load_dir ~dir =
  let repo = create () in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".ddl" then begin
          let name = Filename.chop_suffix f ".ddl" in
          put repo (load_graph ~name (read_file (Filename.concat dir f)))
        end
        else if Filename.check_suffix f ".sgbin" then
          put repo (Binary.load ~path:(Filename.concat dir f) ()))
      (Sys.readdir dir);
  repo

(** Round-trip a graph through the DDL: the persisted form reloaded.
    Node identities change; names, edges and collections survive. *)
let reload g = load_graph ~name:(Graph.name g) (dump_graph g)
