(** The data repository for semistructured data (§2.2): a catalog of
    named graphs with persistence.

    Unlike a traditional system, the repository cannot rely on schema
    information to organize data; instead graphs are fully indexed
    (collection and attribute extents, global value index, schema
    index) — the indexes live in {!Sgraph.Graph} and are rebuilt when a
    graph loads.  Persistence is the human-readable DDL or the compact
    {!Binary} format. *)

open Sgraph

type t

exception Not_found_graph of string

val create : unit -> t
val put : t -> Graph.t -> unit
(** Catalog a graph under its own name, replacing any previous graph of
    that name. *)

val get : t -> string -> Graph.t
val get_opt : t -> string -> Graph.t option
val names : t -> string list
val mem : t -> string -> bool
val remove : t -> string -> unit

val dump_graph : Graph.t -> string
(** The DDL text of a graph. *)

val load_graph : name:string -> string -> Graph.t

val save_dir : ?format:[ `Ddl | `Binary ] -> t -> dir:string -> unit
(** Persist every graph below [dir] as [<name>.ddl] or
    [<name>.sgbin]. *)

val load_dir : dir:string -> t
(** Load every [*.ddl] and [*.sgbin] file of [dir]. *)

val reload : Graph.t -> Graph.t
(** Round-trip a graph through the DDL (fresh oids, same structure,
    rebuilt indexes). *)
