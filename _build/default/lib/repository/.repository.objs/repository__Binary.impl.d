lib/repository/binary.ml: Array Buffer Char Graph Hashtbl Int64 List Oid Printf Sgraph String Value
