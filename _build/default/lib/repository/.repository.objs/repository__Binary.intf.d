lib/repository/binary.mli: Graph Sgraph
