lib/repository/store.mli: Graph Sgraph
