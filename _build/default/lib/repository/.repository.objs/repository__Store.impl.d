lib/repository/store.ml: Array Binary Ddl Filename Graph List Sgraph Sys
