lib/baseline/procedural.ml: Buffer Graph Hashtbl List Oid Printf Sgraph String Value
