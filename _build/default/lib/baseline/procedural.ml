(** The pre-STRUDEL baseline: hand-coded procedural site generation.

    Before STRUDEL, the paper's sites were produced by "a large set of
    CGI-BIN scripts" — programs that interleave data access, structure
    and presentation.  This module is that baseline, written the way
    such scripts are: direct traversal of the data, string-concatenated
    HTML, one function per page family, no declarative layer.  It is
    the comparator for the Fig. 8 suitability study and the performance
    benches: functionally equivalent output for the homepage and news
    sites, but every structural change means editing code, and a second
    site version means a second copy of the functions. *)

open Sgraph

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let buf_page title body =
  Printf.sprintf
    "<html>\n<head><title>%s</title></head>\n<body>\n%s\n</body>\n</html>\n"
    (esc title) body

let slug name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

let value_str g o attr =
  match Graph.attr_value g o attr with
  | Some v -> Value.to_display_string v
  | None -> ""

let values g o attr =
  List.filter_map
    (fun t -> match t with Graph.V v -> Some v | Graph.N _ -> None)
    (Graph.attr g o attr)

(** Generate the bibliography homepage site: root page with by-year and
    by-category indexes, year pages, category pages, abstracts page,
    one presentation per publication — the same site the Fig. 3 query
    plus Fig. 7 templates produce, coded by hand. *)
let homepage_site (g : Graph.t) : (string * string) list =
  let pubs = Graph.collection g "Publications" in
  (* collect years and categories by scanning the data — the piece a
     site-definition query's WHERE clause did declaratively *)
  let years = Hashtbl.create 16 and cats = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun v ->
          let y = Value.to_display_string v in
          let l = try Hashtbl.find years y with Not_found -> [] in
          Hashtbl.replace years y (p :: l))
        (values g p "year");
      List.iter
        (fun v ->
          let c = Value.to_display_string v in
          let l = try Hashtbl.find cats c with Not_found -> [] in
          Hashtbl.replace cats c (p :: l))
        (values g p "category"))
    pubs;
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl [])
  in
  let pub_line p =
    let title = value_str g p "title" in
    let authors =
      String.concat ", "
        (List.map Value.to_display_string (values g p "author"))
    in
    let ps = value_str g p "postscript" in
    let venue =
      match value_str g p "journal", value_str g p "booktitle" with
      | "", "" -> ""
      | j, "" -> Printf.sprintf "<i>%s</i>, " (esc j)
      | _, b -> Printf.sprintf "<i>%s</i>, " (esc b)
    in
    let title_html =
      if ps = "" then Printf.sprintf "<b>%s</b>" (esc title)
      else Printf.sprintf "<b><a href=\"%s\">%s</a></b>" (esc ps) (esc title)
    in
    Printf.sprintf "%s. By %s, %s%s. <a href=\"abstract_%s.html\">abstract</a>"
      title_html (esc authors) venue
      (esc (value_str g p "year"))
      (slug (Oid.name p))
  in
  let year_pages =
    List.map
      (fun (y, ps) ->
        ( Printf.sprintf "year_%s.html" (slug y),
          buf_page
            ("Publications from " ^ y)
            (Printf.sprintf "<h2>Publications from %s</h2>\n<ul>\n%s</ul>"
               (esc y)
               (String.concat ""
                  (List.map
                     (fun p -> "<li>" ^ pub_line p ^ "</li>\n")
                     ps))) ))
      (sorted years)
  in
  let cat_pages =
    List.map
      (fun (c, ps) ->
        ( Printf.sprintf "cat_%s.html" (slug c),
          buf_page
            ("Publications on " ^ c)
            (Printf.sprintf "<h2>Publications on %s</h2>\n<ul>\n%s</ul>"
               (esc c)
               (String.concat ""
                  (List.map
                     (fun p -> "<li>" ^ pub_line p ^ "</li>\n")
                     ps))) ))
      (sorted cats)
  in
  let abstract_pages =
    List.map
      (fun p ->
        ( Printf.sprintf "abstract_%s.html" (slug (Oid.name p)),
          buf_page
            (value_str g p "title")
            (Printf.sprintf "<h3>%s</h3>\nBy %s.\n%s"
               (esc (value_str g p "title"))
               (esc
                  (String.concat ", "
                     (List.map Value.to_display_string (values g p "author"))))
               (esc (value_str g p "abstract"))) ))
      pubs
  in
  let abstracts_index =
    ( "abstracts.html",
      buf_page "Paper Abstracts"
        (Printf.sprintf "<h1>Paper Abstracts</h1>\n%s"
           (String.concat "<hr>\n"
              (List.map
                 (fun p ->
                   Printf.sprintf "<h3>%s</h3>By %s."
                     (esc (value_str g p "title"))
                     (esc
                        (String.concat ", "
                           (List.map Value.to_display_string
                              (values g p "author")))))
                 pubs))) )
  in
  let root =
    ( "index.html",
      buf_page "Publications"
        (Printf.sprintf
           "<h1>Publications</h1>\n<h3>Publications by Year</h3>\n<ul>\n\
            %s</ul>\n<h3>Publications by Topic</h3>\n<ul>\n%s</ul>\n\
            <p><a href=\"abstracts.html\">All paper abstracts</a></p>"
           (String.concat ""
              (List.map
                 (fun (y, _) ->
                   Printf.sprintf
                     "<li><a href=\"year_%s.html\">%s</a></li>\n" (slug y)
                     (esc y))
                 (sorted years)))
           (String.concat ""
              (List.map
                 (fun (c, _) ->
                   Printf.sprintf "<li><a href=\"cat_%s.html\">%s</a></li>\n"
                     (slug c) (esc c))
                 (sorted cats)))) )
  in
  (root :: abstracts_index :: year_pages) @ cat_pages @ abstract_pages

(** Generate the news site: section indexes and one page per article
    (the CNN-demo shape), hand-coded. *)
let news_site ?(sections_filter = fun _ -> true) (g : Graph.t) :
    (string * string) list =
  let articles = Graph.collection g "Articles" in
  let sections = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          let s = Value.to_display_string v in
          if sections_filter s then begin
            let l = try Hashtbl.find sections s with Not_found -> [] in
            Hashtbl.replace sections s (a :: l)
          end)
        (values g a "section"))
    articles;
  let sorted_sections =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) sections [])
  in
  let in_some_section a =
    List.exists
      (fun v -> sections_filter (Value.to_display_string v))
      (values g a "section")
  in
  let article_page a =
    let image_html =
      match Graph.attr_value g a "image" with
      | Some (Value.File (Value.Image, p)) ->
        Printf.sprintf "<img src=\"%s\">\n" (esc p)
      | Some _ | None -> ""
    in
    let related_item t =
      match t with
      | Graph.N r when in_some_section r ->
        Some
          (Printf.sprintf "<li><a href=\"%s.html\">%s</a></li>"
             (slug (Oid.name r))
             (esc (value_str g r "headline")))
      | Graph.N _ | Graph.V _ -> None
    in
    let related_html =
      String.concat ""
        (List.filter_map related_item (Graph.attr g a "related"))
    in
    let body =
      Printf.sprintf
        "<h1>%s</h1>\n<p><i>%s — %s</i></p>\n<p>%s</p>\n%s<ul>%s</ul>"
        (esc (value_str g a "headline"))
        (esc (value_str g a "date"))
        (esc (value_str g a "byline"))
        (esc (value_str g a "body"))
        image_html related_html
    in
    ( Printf.sprintf "%s.html" (slug (Oid.name a)),
      buf_page (value_str g a "headline") body )
  in
  let article_pages =
    List.filter_map
      (fun a -> if in_some_section a then Some (article_page a) else None)
      articles
  in
  let section_pages =
    List.map
      (fun (s, arts) ->
        ( Printf.sprintf "section_%s.html" (slug s),
          buf_page s
            (Printf.sprintf "<h1>%s</h1>\n<ul>\n%s</ul>" (esc s)
               (String.concat ""
                  (List.map
                     (fun a ->
                       Printf.sprintf
                         "<li><a href=\"%s.html\">%s</a> (%s)</li>\n"
                         (slug (Oid.name a))
                         (esc (value_str g a "headline"))
                         (esc (value_str g a "date")))
                     arts))) ))
      sorted_sections
  in
  let root =
    ( "index.html",
      buf_page "News"
        (Printf.sprintf "<h1>News</h1>\n<ul>\n%s</ul>"
           (String.concat ""
              (List.map
                 (fun (s, arts) ->
                   Printf.sprintf
                     "<li><a href=\"section_%s.html\">%s</a> (%d \
                      articles)</li>\n"
                     (slug s) (esc s) (List.length arts))
                 sorted_sections))) )
  in
  root :: (section_pages @ article_pages)

let total_bytes pages =
  List.fold_left (fun n (_, html) -> n + String.length html) 0 pages
