open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let census g =
  ( Graph.node_count g,
    Graph.edge_count g,
    List.sort compare
      (List.map (fun c -> (c, Graph.collection_size g c)) (Graph.collections g)),
    List.sort compare
      (List.map (fun l -> (l, Graph.label_count g l)) (Graph.labels g)) )

let roundtrip name data qsrc =
  t ("decomposed pieces reproduce the site graph: " ^ name) (fun () ->
      let q = Parser.parse qsrc in
      let direct = Eval.run data q in
      let pieces = Schema.Decompose.of_query q in
      let composed = Schema.Decompose.run_all pieces data in
      check_bool "same census" true (census direct = census composed))

let suite =
  [
    roundtrip "paper example"
      (fst (Ddl.parse Sites.Paper_example.data_ddl))
      Sites.Paper_example.site_query;
    roundtrip "cnn"
      (Wrappers.Synth.news_graph ~articles:25 ())
      Sites.Cnn.general_query;
    roundtrip "rodin" (Sites.Rodin.data ()) Sites.Rodin.site_query;
    roundtrip "homepage"
      (Sites.Homepage.data ~entries:8 ())
      Sites.Homepage.site_query;
    t "piece inventory of the fig3 query" (fun () ->
        let q = Parser.parse Sites.Paper_example.site_query in
        let pieces = Schema.Decompose.of_query q in
        let count prefix =
          List.length
            (List.filter
               (fun p ->
                 String.length p.Schema.Decompose.piece_name
                 >= String.length prefix
                 && String.sub p.Schema.Decompose.piece_name 0
                      (String.length prefix)
                    = prefix)
               pieces)
        in
        check_int "6 create pieces" 6 (count "create:");
        check_int "11 link pieces" 11 (count "link:");
        check_int "6 collect pieces" 6 (count "collect:"));
    t "every piece is independently valid" (fun () ->
        let q = Parser.parse Sites.Cnn.general_query in
        List.iter
          (fun p ->
            check_bool p.Schema.Decompose.piece_name true
              (Check.is_valid p.Schema.Decompose.query))
          (Schema.Decompose.of_query q));
    t "any subset computes a fragment (links only, no collects)" (fun () ->
        let q = Parser.parse Sites.Paper_example.site_query in
        let data = fst (Ddl.parse Sites.Paper_example.data_ddl) in
        let pieces = Schema.Decompose.of_query q in
        let link_pieces =
          List.filter
            (fun p ->
              String.length p.Schema.Decompose.piece_name >= 5
              && String.sub p.Schema.Decompose.piece_name 0 5 = "link:")
            pieces
        in
        let g = Schema.Decompose.run_all link_pieces data in
        let full = Eval.run data q in
        check_int "all edges present" (Graph.edge_count full)
          (Graph.edge_count g);
        check_int "no collections" 0 (List.length (Graph.collections g)));
    t "pieces pretty-print and re-parse" (fun () ->
        let q = Parser.parse Sites.Paper_example.site_query in
        List.iter
          (fun p ->
            let printed = Pretty.to_string p.Schema.Decompose.query in
            check_bool p.Schema.Decompose.piece_name true
              (Pretty.query_equal p.Schema.Decompose.query
                 (Parser.parse printed)))
          (Schema.Decompose.of_query q));
  ]
