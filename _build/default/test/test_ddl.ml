open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let fig2 = Sites.Paper_example.data_ddl

let parsing =
  [
    t "fig2 parses" (fun () ->
        let g, dirs = Ddl.parse fig2 in
        check_int "2 pubs" 2 (Graph.collection_size g "Publications");
        check_int "1 directive set" 1 (List.length dirs);
        check_int "22 edges" 22 (Graph.edge_count g));
    t "directives coerce files" (fun () ->
        let g, _ = Ddl.parse fig2 in
        let p1 = Option.get (Graph.find_node g "pub1") in
        check_bool "abstract is text file" true
          (match Graph.attr_value g p1 "abstract" with
           | Some (Value.File (Value.Text, _)) -> true
           | _ -> false);
        check_bool "postscript is ps file" true
          (match Graph.attr_value g p1 "postscript" with
           | Some (Value.File (Value.Postscript, _)) -> true
           | _ -> false));
    t "explicit types override directives" (fun () ->
        let src =
          {|collection C { a text }
            object o in C { a url "http://x" }|}
        in
        let g, _ = Ddl.parse src in
        let o = Option.get (Graph.find_node g "o") in
        check_bool "url wins" true
          (Graph.attr_value g o "a" = Some (Value.Url "http://x")));
    t "multi-valued attributes" (fun () ->
        let g, _ = Ddl.parse fig2 in
        let p1 = Option.get (Graph.find_node g "pub1") in
        check_int "2 authors" 2 (List.length (Graph.attr g p1 "author"));
        check_int "2 categories" 2 (List.length (Graph.attr g p1 "category")));
    t "dashed attribute names" (fun () ->
        let g, _ = Ddl.parse fig2 in
        let p1 = Option.get (Graph.find_node g "pub1") in
        check_bool "pub-type" true
          (Graph.attr_value g p1 "pub-type" = Some (Value.String "article")));
    t "references, including forward" (fun () ->
        let src =
          {|object a { next &b }
            object b { prev &a }|}
        in
        let g, _ = Ddl.parse src in
        let a = Option.get (Graph.find_node g "a") in
        let b = Option.get (Graph.find_node g "b") in
        check_bool "a.next=b" true (Graph.has_edge g a "next" (Graph.N b));
        check_bool "b.prev=a" true (Graph.has_edge g b "prev" (Graph.N a)));
    t "nested anonymous objects" (fun () ->
        let src = {|object o { addr { city "Summit" zip "07901" } }|} in
        let g, _ = Ddl.parse src in
        let o = Option.get (Graph.find_node g "o") in
        match Graph.attr1 g o "addr" with
        | Some (Graph.N n) ->
          check_bool "city" true
            (Graph.attr_value g n "city" = Some (Value.String "Summit"))
        | _ -> Alcotest.fail "expected nested node");
    t "multiple collections" (fun () ->
        let src = {|object o in A, B { x 1 }|} in
        let g, _ = Ddl.parse src in
        let o = Option.get (Graph.find_node g "o") in
        Alcotest.(check (list string)) "colls" [ "A"; "B" ]
          (Graph.collections_of g o));
    t "comments ignored" (fun () ->
        let src =
          "// line comment\n/* block\ncomment */\nobject o { x 1 } # hash\n"
        in
        let g, _ = Ddl.parse src in
        check_int "1 node" 1 (Graph.node_count g));
    t "empty object" (fun () ->
        let g, _ = Ddl.parse "object lonely {}" in
        check_int "1 node" 1 (Graph.node_count g);
        check_int "0 edges" 0 (Graph.edge_count g));
    t "quoted attribute names" (fun () ->
        let g, _ = Ddl.parse {|object o { "Weird Label!" 5 }|} in
        let o = Option.get (Graph.find_node g "o") in
        check_bool "label" true
          (Graph.attr_value g o "Weird Label!" = Some (Value.Int 5)));
    t "unknown file kind becomes other" (fun () ->
        let g, _ = Ddl.parse {|object o { doc pdf "a.pdf" }|} in
        let o = Option.get (Graph.find_node g "o") in
        check_bool "other kind" true
          (Graph.attr_value g o "doc"
           = Some (Value.File (Value.Other_file "pdf", "a.pdf"))));
    t "extending an existing graph resolves names" (fun () ->
        let g, _ = Ddl.parse "object a { x 1 }" in
        let _ = Ddl.parse_into g "object b { to &a }" in
        let a = Option.get (Graph.find_node g "a") in
        let b = Option.get (Graph.find_node g "b") in
        check_bool "cross-batch ref" true (Graph.has_edge g b "to" (Graph.N a)));
  ]

let errors =
  let expect_error name src =
    t name (fun () ->
        check_bool "raises" true
          (try
             ignore (Ddl.parse src);
             false
           with Ddl.Ddl_error _ -> true))
  in
  [
    expect_error "unknown reference" "object a { x &nope }";
    expect_error "unterminated object" "object a { x 1";
    expect_error "bad toplevel" "objeto a {}";
    expect_error "missing value" "object a { x }";
    expect_error "unterminated string" "object a { x \"abc }";
  ]

(* structural comparison of graphs by node names *)
let graph_signature g =
  let edges =
    Graph.fold_edges
      (fun s l tgt acc ->
        let tk =
          match tgt with
          | Graph.N o -> "N:" ^ Oid.name o
          | Graph.V v -> "V:" ^ Value.to_string v
        in
        (Oid.name s, l, tk) :: acc)
      g []
    |> List.sort compare
  in
  let colls =
    List.map
      (fun c -> (c, List.sort compare (List.map Oid.name (Graph.collection g c))))
      (List.sort compare (Graph.collections g))
  in
  (List.sort compare (List.map Oid.name (Graph.nodes g)), edges, colls)

let roundtrip =
  [
    t "fig2 print/parse roundtrip" (fun () ->
        let g, _ = Ddl.parse fig2 in
        let g' = fst (Ddl.parse (Ddl.print g)) in
        check_bool "signature" true (graph_signature g = graph_signature g'));
    t "site graph roundtrip (skolem names)" (fun () ->
        let b = Sites.Paper_example.build () in
        let sg = b.Strudel.Site.site_graph in
        let printed = Ddl.print sg in
        let sg' = fst (Ddl.parse printed) in
        check_int "nodes" (Graph.node_count sg) (Graph.node_count sg');
        check_int "edges" (Graph.edge_count sg) (Graph.edge_count sg'));
    t "print is stable (idempotent)" (fun () ->
        let g, _ = Ddl.parse fig2 in
        let p1 = Ddl.print g in
        let p2 = Ddl.print (fst (Ddl.parse p1)) in
        check_str "stable" p1 p2);
  ]

(* qcheck: random graphs survive print/parse *)
let rand_graph_gen =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let* edges =
    list_size (int_range 0 15)
      (triple (int_bound (n - 1))
         (oneofl [ "x"; "y"; "pub-type"; "Weird one" ])
         (oneof
            [
              map (fun i -> `V (Value.Int i)) small_signed_int;
              map (fun s -> `V (Value.String s))
                (string_size ~gen:printable (int_range 0 6));
              map (fun j -> `N j) (int_bound (n - 1));
              return (`V (Value.File (Value.Postscript, "p.ps")));
            ]))
  in
  let* colls = list_size (int_range 0 4) (pair (oneofl [ "C"; "D" ]) (int_bound (n - 1))) in
  return (n, edges, colls)

let build_rand (n, edges, colls) =
  let g = Graph.create ~name:"r" () in
  let nodes = Array.init n (fun i -> Oid.fresh (Printf.sprintf "n%d" i)) in
  Array.iter (Graph.add_node g) nodes;
  List.iter
    (fun (a, l, tgt) ->
      match tgt with
      | `V v -> Graph.add_edge g nodes.(a) l (Graph.V v)
      | `N j -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(j)))
    edges;
  List.iter (fun (c, i) -> Graph.add_to_collection g c nodes.(i)) colls;
  g

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random graph print/parse preserves structure"
         ~count:300 (QCheck.make rand_graph_gen) (fun spec ->
           let g = build_rand spec in
           let g' = fst (Ddl.parse (Ddl.print g)) in
           graph_signature g = graph_signature g'));
  ]

let suite = parsing @ errors @ roundtrip @ props
