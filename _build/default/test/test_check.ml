open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

let parse = Parser.parse

let has_error pred q =
  List.exists pred (Check.check q).Check.errors

let has_warning pred q =
  List.exists pred (Check.check q).Check.warnings

let suite =
  [
    t "valid safe query" (fun () ->
        let q =
          parse {|WHERE C(x), x -> "a" -> y CREATE F(x) LINK F(x) -> "b" -> y|}
        in
        check_bool "valid" true (Check.is_valid q);
        check_bool "safe" true (Check.is_safe q));
    t "link from variable rejected" (fun () ->
        let q = parse {|WHERE C(x), x -> "a" -> y CREATE F(x) LINK x -> "b" -> y|} in
        check_bool "error" true
          (has_error
             (function Check.Link_source_not_new _ -> true | _ -> false)
             q));
    t "skolem used but never created" (fun () ->
        let q = parse {|WHERE C(x) CREATE F(x) LINK F(x) -> "a" -> G(x)|} in
        check_bool "error" true
          (has_error
             (function Check.Skolem_not_created "G" -> true | _ -> false)
             q));
    t "created in another block is fine" (fun () ->
        let q =
          parse
            {|{ WHERE C(x) CREATE G(x) }
              { WHERE C(x) CREATE F(x) LINK F(x) -> "a" -> G(x) }|}
        in
        check_bool "valid" true (Check.is_valid q));
    t "arity mismatch" (fun () ->
        let q =
          parse {|WHERE C(x), D(y) CREATE F(x), F(x, y) LINK F(x) -> "a" -> y|}
        in
        check_bool "error" true
          (has_error
             (function Check.Skolem_arity ("F", _, _) -> true | _ -> false)
             q));
    t "unsafe variable warning (complement query)" (fun () ->
        let q =
          parse {|WHERE not(p -> l -> q) CREATE F(p), F(q) LINK F(p) -> l -> F(q)|}
        in
        check_bool "valid but unsafe" true (Check.is_valid q);
        check_bool "warn p" true
          (has_warning (function Check.Unsafe_variable "p" -> true | _ -> false) q);
        check_bool "warn l" true
          (has_warning (function Check.Unsafe_variable "l" -> true | _ -> false) q));
    t "variable bound by ancestor is safe in nested block" (fun () ->
        let q =
          parse
            {|WHERE C(x), x -> l -> v
              CREATE F(x)
              { WHERE l = "year" CREATE G(v) LINK G(v) -> "p" -> F(x) }|}
        in
        check_bool "safe" true (Check.is_safe q));
    t "collect of uncreated skolem" (fun () ->
        let q = parse {|WHERE C(x) COLLECT Out(F(x))|} in
        check_bool "error" true
          (has_error
             (function Check.Skolem_not_created "F" -> true | _ -> false)
             q));
    t "collect of plain variable is fine" (fun () ->
        let q = parse {|WHERE C(x) COLLECT Out(x)|} in
        check_bool "valid" true (Check.is_valid q));
    t "eq against constant binds (safe)" (fun () ->
        let q =
          parse {|WHERE C(x), x -> l -> v, l = "year" CREATE F(v) LINK F(v) -> "x" -> x|}
        in
        check_bool "safe" true (Check.is_safe q));
    t "validate_exn raises on invalid" (fun () ->
        let q = parse {|WHERE C(x) CREATE F(x) LINK x -> "a" -> F(x)|} in
        check_bool "raises" true
          (try Check.validate_exn q; false with Check.Invalid _ -> true));
    t "paper corpus all valid" (fun () ->
        List.iter
          (fun src -> check_bool "valid" true (Check.is_valid (parse src)))
          [ Sites.Paper_example.site_query; Sites.Cnn.general_query;
            Sites.Cnn.sports_only_query; Sites.Homepage.site_query;
            Sites.Org.site_query ]);
  ]
