open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let suite =
  [
    t "put/get/names" (fun () ->
        let r = Repository.Store.create () in
        let g = fst (Ddl.parse ~graph_name:"g1" "object a { x 1 }") in
        Repository.Store.put r g;
        check_bool "mem" true (Repository.Store.mem r "g1");
        check_int "1 graph" 1 (List.length (Repository.Store.names r));
        check_bool "get" true (Repository.Store.get r "g1" == g));
    t "put replaces same name" (fun () ->
        let r = Repository.Store.create () in
        Repository.Store.put r (fst (Ddl.parse ~graph_name:"g" "object a {}"));
        Repository.Store.put r
          (fst (Ddl.parse ~graph_name:"g" "object a {} object b {}"));
        check_int "1 name" 1 (List.length (Repository.Store.names r));
        check_int "2 nodes" 2 (Graph.node_count (Repository.Store.get r "g")));
    t "get missing raises" (fun () ->
        let r = Repository.Store.create () in
        check_bool "raises" true
          (try ignore (Repository.Store.get r "nope"); false
           with Repository.Store.Not_found_graph _ -> true));
    t "remove" (fun () ->
        let r = Repository.Store.create () in
        Repository.Store.put r (fst (Ddl.parse ~graph_name:"g" "object a {}"));
        Repository.Store.remove r "g";
        check_bool "gone" false (Repository.Store.mem r "g"));
    t "reload roundtrip preserves structure" (fun () ->
        let g = fst (Ddl.parse ~graph_name:"g" Sites.Paper_example.data_ddl) in
        let g' = Repository.Store.reload g in
        check_int "nodes" (Graph.node_count g) (Graph.node_count g');
        check_int "edges" (Graph.edge_count g) (Graph.edge_count g');
        check_int "colls"
          (Graph.collection_size g "Publications")
          (Graph.collection_size g' "Publications"));
    t "reload rebuilds indexes" (fun () ->
        let g = fst (Ddl.parse ~graph_name:"g" Sites.Paper_example.data_ddl) in
        let g' = Repository.Store.reload g in
        check_int "label idx" (Graph.label_count g "author")
          (Graph.label_count g' "author");
        check_int "value idx"
          (List.length (Graph.value_index g (Value.Int 1997)))
          (List.length (Graph.value_index g' (Value.Int 1997))));
    t "save_dir / load_dir" (fun () ->
        let dir = Filename.temp_file "strudel" "" in
        Sys.remove dir;
        let r = Repository.Store.create () in
        Repository.Store.put r (fst (Ddl.parse ~graph_name:"one" "object a { x 1 }"));
        Repository.Store.put r
          (fst (Ddl.parse ~graph_name:"two" "object b in C { y 2 }"));
        Repository.Store.save_dir r ~dir;
        let r' = Repository.Store.load_dir ~dir in
        check_int "2 graphs" 2 (List.length (Repository.Store.names r'));
        check_int "collection survives" 1
          (Graph.collection_size (Repository.Store.get r' "two") "C");
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir);
    t "load_dir of missing dir is empty" (fun () ->
        let r = Repository.Store.load_dir ~dir:"/nonexistent/strudel" in
        check_int "empty" 0 (List.length (Repository.Store.names r)));
    t "save_dir/load_dir with the binary format" (fun () ->
        let dir = Filename.temp_file "strudelbin" "" in
        Sys.remove dir;
        let r = Repository.Store.create () in
        Repository.Store.put r
          (fst (Ddl.parse ~graph_name:"one" Sites.Paper_example.data_ddl));
        Repository.Store.save_dir ~format:`Binary r ~dir;
        check_bool "sgbin file" true
          (Array.exists
             (fun f -> Filename.check_suffix f ".sgbin")
             (Sys.readdir dir));
        let r' = Repository.Store.load_dir ~dir in
        check_int "reloaded" 2
          (Graph.collection_size
             (Repository.Store.get r' "one")
             "Publications");
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir);
    t "query_repo resolves INPUT names and stores OUTPUT" (fun () ->
        let r = Repository.Store.create () in
        Repository.Store.put r
          (fst (Ddl.parse ~graph_name:"A" "object a1 in As { k 1 }\nobject a2 in As { k 2 }"));
        Repository.Store.put r
          (fst (Ddl.parse ~graph_name:"B" "object b1 in Bs { k 2 }"));
        let out =
          Strudel.Api.query_repo r
            {|INPUT A, B
              WHERE As(x), x -> "k" -> v, Bs(y), y -> "k" -> v
              CREATE J(x, y) LINK J(x, y) -> "key" -> v
              COLLECT Joined(J(x, y))
              OUTPUT JOINED|}
        in
        check_int "one join row" 1 (Graph.collection_size out "Joined");
        check_bool "stored under OUTPUT name" true
          (Repository.Store.mem r "JOINED");
        (* composition: a second query reads the stored result *)
        let out2 =
          Strudel.Api.query_repo r
            {|INPUT JOINED
              WHERE Joined(j) CREATE F(j) COLLECT Fs(F(j)) OUTPUT FINAL|}
        in
        check_int "chained" 1 (Graph.collection_size out2 "Fs"));
    t "query_repo with unknown input raises" (fun () ->
        let r = Repository.Store.create () in
        check_bool "raises" true
          (try
             ignore (Strudel.Api.query_repo r "INPUT NOPE WHERE C(x) COLLECT O(x) OUTPUT o");
             false
           with Repository.Store.Not_found_graph _ -> true));
  ]
