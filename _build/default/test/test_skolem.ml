open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let suite =
  [
    t "same inputs same oid" (fun () ->
        let s = Skolem.create () in
        let o1, fresh1 = Skolem.apply s "F" [ Skolem.A_val (Value.Int 1) ] in
        let o2, fresh2 = Skolem.apply s "F" [ Skolem.A_val (Value.Int 1) ] in
        check_bool "same" true (Oid.equal o1 o2);
        check_bool "first fresh" true fresh1;
        check_bool "second not fresh" false fresh2);
    t "different args different oid" (fun () ->
        let s = Skolem.create () in
        let o1, _ = Skolem.apply s "F" [ Skolem.A_val (Value.Int 1) ] in
        let o2, _ = Skolem.apply s "F" [ Skolem.A_val (Value.Int 2) ] in
        check_bool "diff" false (Oid.equal o1 o2));
    t "different functions different oid" (fun () ->
        let s = Skolem.create () in
        let o1, _ = Skolem.apply s "F" [] in
        let o2, _ = Skolem.apply s "G" [] in
        check_bool "diff" false (Oid.equal o1 o2));
    t "oid args keyed by identity" (fun () ->
        let s = Skolem.create () in
        let a = Oid.fresh "x" and b = Oid.fresh "x" (* same name! *) in
        let o1, _ = Skolem.apply s "F" [ Skolem.A_oid a ] in
        let o2, _ = Skolem.apply s "F" [ Skolem.A_oid b ] in
        check_bool "distinct oids distinct terms" false (Oid.equal o1 o2));
    t "label vs string value distinct" (fun () ->
        let s = Skolem.create () in
        let o1, _ = Skolem.apply s "F" [ Skolem.A_label "x" ] in
        let o2, _ = Skolem.apply s "F" [ Skolem.A_val (Value.String "x") ] in
        check_bool "distinct kinds" false (Oid.equal o1 o2));
    t "term name readable" (fun () ->
        Alcotest.(check string) "name" "YearPage(1997)"
          (Skolem.term_name "YearPage" [ Skolem.A_val (Value.Int 1997) ]));
    t "find" (fun () ->
        let s = Skolem.create () in
        check_bool "absent" true (Skolem.find s "F" [] = None);
        let o, _ = Skolem.apply s "F" [] in
        check_bool "present" true
          (match Skolem.find s "F" [] with
           | Some o' -> Oid.equal o o'
           | None -> false));
    t "term_of inverse" (fun () ->
        let s = Skolem.create () in
        let args = [ Skolem.A_val (Value.Int 7); Skolem.A_label "l" ] in
        let o, _ = Skolem.apply s "G" args in
        check_bool "inverse" true
          (match Skolem.term_of s o with
           | Some ("G", args') -> args' = args
           | _ -> false);
        check_bool "unknown oid" true (Skolem.term_of s (Oid.fresh "z") = None));
    t "functions and created" (fun () ->
        let s = Skolem.create () in
        ignore (Skolem.apply s "A" []);
        ignore (Skolem.apply s "B" [ Skolem.A_val (Value.Int 1) ]);
        ignore (Skolem.apply s "B" [ Skolem.A_val (Value.Int 2) ]);
        Alcotest.(check (list string)) "fns" [ "A"; "B" ] (Skolem.functions s);
        check_int "created B" 2 (List.length (Skolem.created s "B"));
        check_int "size" 3 (Skolem.size s));
    t "scopes are independent" (fun () ->
        let s1 = Skolem.create () and s2 = Skolem.create () in
        let o1, _ = Skolem.apply s1 "F" [] in
        let o2, _ = Skolem.apply s2 "F" [] in
        check_bool "different scopes different nodes" false (Oid.equal o1 o2));
  ]
