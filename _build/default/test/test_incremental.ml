open Sgraph
open Strudel

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let page_map (site : Template.Generator.site) =
  List.map
    (fun (p : Template.Generator.page) ->
      (Oid.name p.Template.Generator.obj, p.Template.Generator.html))
    site.Template.Generator.pages
  |> List.sort compare

let suite =
  [
    t "rebuild with identical data reuses every page" (fun () ->
        let data = Sites.Cnn.data ~articles:40 () in
        let previous = Site.build ~data Sites.Cnn.definition in
        let report =
          Incremental.rebuild ~previous ~data:(Sites.Cnn.data ~articles:40 ()) ()
        in
        check_int "0 rerendered" 0 report.Incremental.pages_rerendered;
        check_int "all reused" report.Incremental.pages_total
          report.Incremental.pages_reused);
    t "incremental result equals full rebuild" (fun () ->
        let previous =
          Site.build ~data:(Sites.Cnn.data ~articles:40 ()) Sites.Cnn.definition
        in
        let data2 = Sites.Cnn.data ~articles:40 () in
        (match Graph.find_node data2 "art3" with
         | Some a ->
           Graph.add_edge data2 a "headline"
             (Graph.V (Value.String "CHANGED headline"))
         | None -> Alcotest.fail "missing art3");
        let inc = Incremental.rebuild ~previous ~data:data2 () in
        let full = Site.build ~data:data2 Sites.Cnn.definition in
        check_bool "page html identical" true
          (page_map inc.Incremental.built.Site.site = page_map full.Site.site));
    t "change touches few pages" (fun () ->
        let previous =
          Site.build ~data:(Sites.Cnn.data ~articles:60 ()) Sites.Cnn.definition
        in
        let data2 = Sites.Cnn.data ~articles:60 () in
        (match Graph.find_node data2 "art5" with
         | Some a ->
           Graph.add_edge data2 a "body" (Graph.V (Value.String "new body"))
         | None -> ());
        let report = Incremental.rebuild ~previous ~data:data2 () in
        check_bool "few rerendered" true
          (report.Incremental.pages_rerendered * 4 < report.Incremental.pages_total);
        check_bool "some rerendered" true (report.Incremental.pages_rerendered > 0));
    t "added object creates new pages" (fun () ->
        let previous =
          Site.build ~data:(Sites.Cnn.data ~articles:20 ()) Sites.Cnn.definition
        in
        let data2 = Sites.Cnn.data ~articles:21 () in
        let report = Incremental.rebuild ~previous ~data:data2 () in
        check_bool "new pages rendered" true
          (report.Incremental.pages_rerendered > 0);
        check_bool "more pages than before" true
          (report.Incremental.pages_total
           > Template.Generator.page_count previous.Site.site - 1));
    t "removed attribute invalidates its page" (fun () ->
        let data = Sites.Paper_example.data () in
        let previous = Site.build ~data Sites.Paper_example.definition in
        let data2 = Sites.Paper_example.data () in
        let p1 = Option.get (Graph.find_node data2 "pub1") in
        Graph.remove_edge data2 p1 "journal"
          (Graph.V (Value.String "Transactions on Programming Languages and Systems"));
        let report = Incremental.rebuild ~previous ~data:data2 () in
        check_bool "rerendered something" true
          (report.Incremental.pages_rerendered > 0));
    t "fingerprint stable across identical graphs" (fun () ->
        let g1 = Sites.Paper_example.data () in
        let g2 = Sites.Paper_example.data () in
        let f g = Incremental.fingerprint g ~depth:3 (Option.get (Graph.find_node g "pub1")) in
        check_int "equal" (f g1) (f g2));
    t "fingerprint sensitive to depth-limited changes" (fun () ->
        let g1 = Sites.Paper_example.data () in
        let g2 = Sites.Paper_example.data () in
        let p = Option.get (Graph.find_node g2 "pub1") in
        Graph.add_edge g2 p "note" (Graph.V (Value.String "x"));
        let f g = Incremental.fingerprint g ~depth:3 (Option.get (Graph.find_node g "pub1")) in
        check_bool "differs" true (f g1 <> f g2));
  ]
