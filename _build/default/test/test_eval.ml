open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig2 () = fst (Ddl.parse Sites.Paper_example.data_ddl)

let run ?(strategy = Plan.Heuristic) g src =
  Eval.run ~options:{ Eval.default_options with strategy } g
    (Parser.parse src)

let rows g src =
  Eval.bindings g (Parser.parse_conditions src) |> List.length

let stage1 =
  [
    t "collection membership generates" (fun () ->
        check_int "2 pubs" 2 (rows (fig2 ()) "Publications(x)"));
    t "membership as filter" (fun () ->
        check_int "joined" 2 (rows (fig2 ()) {|Publications(x), Publications(x)|}));
    t "edge with label const" (fun () ->
        check_int "2 years" 2 (rows (fig2 ()) {|x -> "year" -> y|}));
    t "edge with label variable binds" (fun () ->
        (* every attribute edge of pub1+pub2: 22 edges *)
        check_int "22" 22 (rows (fig2 ()) "x -> l -> v"));
    t "edge with bound target via value index" (fun () ->
        check_int "one pub in 1997" 1 (rows (fig2 ()) {|x -> "year" -> 1997|}));
    t "value coercion in edge match" (fun () ->
        check_int "string matches int" 1
          (rows (fig2 ()) {|x -> "year" -> "1997"|}));
    t "external predicate" (fun () ->
        check_int "2 ps files" 2
          (rows (fig2 ()) {|Publications(x), x -> "postscript" -> q, isPostScript(q)|});
        check_int "no image" 0
          (rows (fig2 ()) {|Publications(x), x -> "postscript" -> q, isImageFile(q)|}));
    t "comparison filters" (fun () ->
        check_int "1997 only" 1
          (rows (fig2 ()) {|x -> "year" -> y, y = 1997|});
        check_int "le" 2 (rows (fig2 ()) {|x -> "year" -> y, y <= 1998|});
        check_int "ne" 1 (rows (fig2 ()) {|x -> "year" -> y, y != 1997|}));
    t "eq as binder" (fun () ->
        check_int "bind then probe" 1
          (rows (fig2 ()) {|y = 1997, x -> "year" -> y|}));
    t "in condition" (fun () ->
        check_int "both kinds" 2
          (rows (fig2 ())
             {|Publications(x), x -> "pub-type" -> k, k in {"article", "inproceedings"}|});
        check_int "one kind" 1
          (rows (fig2 ()) {|Publications(x), x -> "pub-type" -> k, k in {"article"}|}));
    t "negation" (fun () ->
        check_int "pub without journal" 1
          (rows (fig2 ()) {|Publications(x), not(x -> "journal" -> j)|}));
    t "path condition from collection" (fun () ->
        check_int "values reachable" 2
          (rows (fig2 ())
             {|Publications(x), x -> "postscript" -> v|}));
    t "star path includes source" (fun () ->
        let g = fig2 () in
        (* x -> * -> x for each of the 2 pubs, plus value self-pairs are
           only for distinct (x,y) bindings: count pairs where y = x *)
        let envs =
          Eval.bindings g (Parser.parse_conditions {|Publications(x), x -> * -> y|})
        in
        let self =
          List.filter
            (fun env ->
              match Eval.Env.find "x" env, Eval.Env.find "y" env with
              | Eval.B_target a, Eval.B_target b -> Graph.target_equal a b
              | _ -> false)
            envs
        in
        check_int "2 self pairs" 2 (List.length self));
    t "duplicate conditions do not duplicate rows" (fun () ->
        check_int "2" 2
          (rows (fig2 ()) {|Publications(x), x -> "year" -> y, x -> "year" -> y|}));
    t "label variable joins across conditions" (fun () ->
        (* attributes shared between pub1 and pub2 with equal values *)
        let n =
          rows (fig2 ())
            {|Publications(x), Publications(x2), x -> l -> v, x2 -> l -> v, x != x2|}
        in
        (* author "Mary Fernandez" (both directions) + category
           "Programming Languages" (both) = 4 rows *)
        check_int "shared attrs" 4 n);
  ]

let construction =
  [
    t "create produces one node per distinct skolem term" (fun () ->
        let out = run (fig2 ()) {|WHERE Publications(x) CREATE F(x) COLLECT Fs(F(x)) OUTPUT o|} in
        check_int "2" 2 (Graph.collection_size out "Fs"));
    t "zero-ary skolem creates a single node across rows" (fun () ->
        let out = run (fig2 ()) {|WHERE Publications(x) CREATE R() LINK R() -> "p" -> x COLLECT Rs(R()) OUTPUT o|} in
        check_int "1 root" 1 (Graph.collection_size out "Rs");
        let r = List.hd (Graph.collection out "Rs") in
        check_int "2 links" 2 (List.length (Graph.attr out r "p")));
    t "link copies attribute edges" (fun () ->
        let out =
          run (fig2 ())
            {|WHERE Publications(x), x -> l -> v CREATE P(x) LINK P(x) -> l -> v COLLECT Ps(P(x)) OUTPUT o|}
        in
        check_int "all attrs copied" 22 (Graph.edge_count out));
    t "link to existing data node shares the object" (fun () ->
        let g = fig2 () in
        let out = run g {|WHERE Publications(x) CREATE F() LINK F() -> "pub" -> x COLLECT Fs(F()) OUTPUT o|} in
        let f = List.hd (Graph.collection out "Fs") in
        List.iter
          (fun tgt ->
            match tgt with
            | Graph.N o -> check_bool "shared node" true (Graph.mem_node g o)
            | Graph.V _ -> Alcotest.fail "expected node")
          (Graph.attr out f "pub"));
    t "immutability: runtime link from data node fails validation" (fun () ->
        let g = fig2 () in
        check_bool "raises" true
          (try
             ignore (run g {|WHERE Publications(x) CREATE F(x) LINK x -> "bad" -> F(x) OUTPUT o|});
             false
           with Check.Invalid _ -> true));
    t "nested blocks conjoin ancestor conditions" (fun () ->
        let out =
          run (fig2 ())
            {|WHERE Publications(x), x -> l -> v
              CREATE P(x)
              { WHERE l = "year" CREATE Y(v) LINK Y(v) -> "p" -> P(x) COLLECT Ys(Y(v)) }
              OUTPUT o|}
        in
        check_int "2 year pages" 2 (Graph.collection_size out "Ys"));
    t "sibling blocks see empty bindings" (fun () ->
        let out =
          run (fig2 ())
            {|{ CREATE A() COLLECT As(A()) }
              { WHERE Publications(x) CREATE B(x) COLLECT Bs(B(x)) }
              OUTPUT o|}
        in
        check_int "A once" 1 (Graph.collection_size out "As");
        check_int "B twice" 2 (Graph.collection_size out "Bs"));
    t "skolem fusion across blocks" (fun () ->
        let out =
          run (fig2 ())
            {|{ WHERE Publications(x) CREATE F(x) COLLECT Fs(F(x)) }
              { WHERE Publications(x), x -> "year" -> y CREATE F(x) LINK F(x) -> "y" -> y }
              OUTPUT o|}
        in
        (* second block's F(x) are the same nodes *)
        check_int "2 nodes" 2 (Graph.collection_size out "Fs");
        check_int "2 + 2 edges? just year edges" 2 (Graph.edge_count out));
    t "collect of atomic value is an error" (fun () ->
        check_bool "raises" true
          (try
             ignore
               (run (fig2 ()) {|WHERE x -> "year" -> y COLLECT Years(y) OUTPUT o|});
             false
           with Eval.Eval_error _ -> true));
    t "label variable in link labels edges with bound label" (fun () ->
        let out =
          run (fig2 ())
            {|WHERE Publications(x), x -> l -> v, l = "title"
              CREATE P(x) LINK P(x) -> l -> v COLLECT Ps(P(x)) OUTPUT o|}
        in
        let p = List.hd (Graph.collection out "Ps") in
        check_int "title edge" 1 (List.length (Graph.attr out p "title")));
    t "query composition via shared scope and into" (fun () ->
        let g = fig2 () in
        let scope = Skolem.create () in
        let out = Graph.create ~name:"composed" () in
        ignore
          (Eval.run ~scope ~into:out g
             (Parser.parse {|WHERE Publications(x) CREATE F(x) COLLECT Fs(F(x)) OUTPUT o|}));
        ignore
          (Eval.run ~scope ~into:out g
             (Parser.parse
                {|WHERE Publications(x), x -> "title" -> v CREATE F(x) LINK F(x) -> "t" -> v OUTPUT o|}));
        check_int "2 nodes total" 2 (Graph.collection_size out "Fs");
        let f = List.hd (Graph.collection out "Fs") in
        check_int "titled" 1 (List.length (Graph.attr out f "t")));
    t "suciu-style composition: copy the site graph and add a navbar"
      (fun () ->
        (* §5.1: "the last step copies the entire site graph and adds a
           navigation bar to each page" — a second query over the SITE
           graph *)
        let site =
          run (fig2 ())
            {|{ CREATE Root() COLLECT Roots(Root()) }
              { WHERE Publications(x) CREATE P(x)
                LINK Root() -> "p" -> P(x) }
              OUTPUT site|}
        in
        let final =
          run site
            {|{ CREATE NavBar()
                LINK NavBar() -> "label" -> "home"
                COLLECT NavBars(NavBar()) }
              { WHERE Roots(r), r -> * -> q, q -> l -> q2
                CREATE N(q), N(q2)
                LINK N(q) -> l -> N(q2), N(q) -> "Nav" -> NavBar(),
                     N(q2) -> "Nav" -> NavBar()
                COLLECT NewRoots(N(r)) }
              OUTPUT final|}
        in
        (* every copied page carries the navbar *)
        let nav_edges = Graph.label_count final "Nav" in
        check_int "3 pages with navbar" 3 nav_edges;
        check_int "copied structure" 2 (Graph.label_count final "p");
        check_int "one new root" 1 (Graph.collection_size final "NewRoots"));
    t "complement query (active domain)" (fun () ->
        let g = Graph.create ~name:"c" () in
        let a = Graph.new_node g "a" and b = Graph.new_node g "b" in
        Graph.add_edge g a "e" (Graph.N b);
        let out =
          run g {|WHERE not(p -> le -> q) CREATE F(p), F(q) LINK F(p) -> le -> F(q) OUTPUT Comp|}
        in
        (* pairs: (a,a), (b,a), (b,b) — all but (a,b) *)
        check_int "3 complement edges" 3 (Graph.edge_count out);
        check_int "2 nodes" 2 (Graph.node_count out));
    t "TextOnly copy query drops image subtrees" (fun () ->
        let g = Graph.create ~name:"s" () in
        let r = Graph.new_node g "r" and p = Graph.new_node g "p" in
        Graph.add_to_collection g "Root" r;
        Graph.add_edge g r "child" (Graph.N p);
        Graph.add_edge g p "pic" (Graph.V (Value.File (Value.Image, "x.gif")));
        Graph.add_edge g p "txt" (Graph.V (Value.String "hello"));
        let out =
          run g
            {|WHERE Root(p0), p0 -> * -> q, q -> l -> q2, not(isImageFile(q2))
              CREATE New(p0), New(q), New(q2)
              LINK New(q) -> l -> New(q2)
              COLLECT TextOnlyRoot(New(p0)) OUTPUT TextOnly|}
        in
        check_int "root collected" 1 (Graph.collection_size out "TextOnlyRoot");
        check_bool "no image labels" true (Graph.label_count out "pic" = 0);
        check_int "child+txt edges" 2 (Graph.edge_count out));
  ]

(* strategy equivalence: all planners compute the same site graph *)
let graph_census g =
  ( Graph.node_count g,
    Graph.edge_count g,
    List.sort compare
      (List.map (fun c -> (c, Graph.collection_size g c)) (Graph.collections g)),
    List.sort compare (List.map (fun l -> (l, Graph.label_count g l)) (Graph.labels g)) )

let strategy_equiv =
  let cases =
    [
      ("paper example", Sites.Paper_example.data_ddl, Sites.Paper_example.site_query);
    ]
  in
  List.map
    (fun (name, ddl, qsrc) ->
      t ("strategies agree: " ^ name) (fun () ->
          let g = fst (Ddl.parse ddl) in
          let census strategy = graph_census (run ~strategy g qsrc) in
          let h = census Plan.Heuristic in
          check_bool "naive" true (census Plan.Naive = h);
          check_bool "costbased" true (census Plan.Cost_based = h)))
    cases

(* qcheck: random data graphs, fixed query pool, strategies agree *)
let data_gen =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let* edges =
    list_size (int_range 0 20)
      (triple (int_bound (n - 1))
         (oneofl [ "a"; "b"; "year" ])
         (oneof
            [ map (fun i -> `I i) (int_bound 4); map (fun j -> `N j) (int_bound (n - 1)) ]))
  in
  let* members = list_size (int_range 0 n) (int_bound (n - 1)) in
  return (n, edges, members)

let build_data (n, edges, members) =
  let g = Graph.create ~name:"q" () in
  let nodes = Array.init n (fun i -> Oid.fresh (Printf.sprintf "n%d" i)) in
  Array.iter (Graph.add_node g) nodes;
  List.iter
    (fun (a, l, tgt) ->
      match tgt with
      | `I v -> Graph.add_edge g nodes.(a) l (Graph.V (Value.Int v))
      | `N j -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(j)))
    edges;
  List.iter (fun i -> Graph.add_to_collection g "C" nodes.(i)) members;
  g

let query_pool =
  [
    {|WHERE C(x), x -> "a" -> v CREATE F(x) LINK F(x) -> "a" -> v COLLECT Fs(F(x)) OUTPUT o|};
    {|WHERE C(x), x -> l -> v CREATE F(x), G(v) LINK F(x) -> l -> G(v) OUTPUT o|};
    {|WHERE x -> "a" -> y, y -> "b" -> z CREATE F(x) LINK F(x) -> "r" -> z COLLECT Fs(F(x)) OUTPUT o|};
    {|WHERE C(x), not(x -> "a" -> 0) CREATE F(x) COLLECT Fs(F(x)) OUTPUT o|};
    {|WHERE C(x), x -> * -> y CREATE F(x) LINK F(x) -> "reach" -> y OUTPUT o|};
    {|WHERE C(x), x -> "year" -> v, v >= 2 CREATE Y(v) LINK Y(v) -> "of" -> x COLLECT Ys(Y(v)) OUTPUT o|};
  ]

let strategy_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"planner strategies agree on random data"
         ~count:150
         (QCheck.make QCheck.Gen.(pair data_gen (int_bound (List.length query_pool - 1))))
         (fun (spec, qi) ->
           let q = Parser.parse (List.nth query_pool qi) in
           let census strategy =
             let g = build_data spec in
             graph_census
               (Eval.run ~options:{ Eval.default_options with strategy } g q)
           in
           census Plan.Naive = census Plan.Heuristic
           && census Plan.Heuristic = census Plan.Cost_based));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"evaluation is deterministic" ~count:100
         (QCheck.make QCheck.Gen.(pair data_gen (int_bound (List.length query_pool - 1))))
         (fun (spec, qi) ->
           let q = Parser.parse (List.nth query_pool qi) in
           let once () =
             graph_census (Eval.run (build_data spec) q)
           in
           once () = once ()));
  ]

let suite = stage1 @ construction @ strategy_equiv @ strategy_props
