open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk () =
  let g = Graph.create ~name:"t" () in
  let a = Graph.new_node g "a" in
  let b = Graph.new_node g "b" in
  let c = Graph.new_node g "c" in
  Graph.add_edge g a "x" (Graph.N b);
  Graph.add_edge g a "x" (Graph.N c);
  Graph.add_edge g a "y" (Graph.V (Value.Int 1));
  Graph.add_edge g b "y" (Graph.V (Value.Int 1));
  Graph.add_edge g b "z" (Graph.V (Value.String "s"));
  (g, a, b, c)

let basics =
  [
    t "node and edge counts" (fun () ->
        let g, _, _, _ = mk () in
        check_int "nodes" 3 (Graph.node_count g);
        check_int "edges" 5 (Graph.edge_count g));
    t "duplicate edges ignored" (fun () ->
        let g, a, b, _ = mk () in
        Graph.add_edge g a "x" (Graph.N b);
        check_int "edges" 5 (Graph.edge_count g));
    t "out_edges order preserved" (fun () ->
        let g, a, _, _ = mk () in
        let labels = List.map fst (Graph.out_edges g a) in
        Alcotest.(check (list string)) "order" [ "x"; "x"; "y" ] labels);
    t "attr returns all targets of label" (fun () ->
        let g, a, _, _ = mk () in
        check_int "x targets" 2 (List.length (Graph.attr g a "x"));
        check_int "y targets" 1 (List.length (Graph.attr g a "y"));
        check_int "none" 0 (List.length (Graph.attr g a "nope")));
    t "attr1 and attr_value" (fun () ->
        let g, a, b, _ = mk () in
        check_bool "attr1 node" true
          (match Graph.attr1 g a "x" with
           | Some (Graph.N o) -> Oid.equal o b
           | _ -> false);
        check_bool "attr_value skips nodes" true
          (Graph.attr_value g a "x" = None);
        check_bool "attr_value" true
          (Graph.attr_value g a "y" = Some (Value.Int 1)));
    t "has_edge" (fun () ->
        let g, a, b, _ = mk () in
        check_bool "yes" true (Graph.has_edge g a "x" (Graph.N b));
        check_bool "no" false (Graph.has_edge g b "x" (Graph.N a)));
    t "in_edges of node" (fun () ->
        let g, _, b, _ = mk () in
        check_int "b preds" 1 (List.length (Graph.in_edges g (Graph.N b))));
    t "in_edges of value counts all" (fun () ->
        let g, _, _, _ = mk () in
        check_int "value preds" 2
          (List.length (Graph.in_edges g (Graph.V (Value.Int 1)))));
    t "remove_edge" (fun () ->
        let g, a, b, _ = mk () in
        Graph.remove_edge g a "x" (Graph.N b);
        check_bool "gone" false (Graph.has_edge g a "x" (Graph.N b));
        check_int "edges" 4 (Graph.edge_count g);
        check_int "extent" 1 (List.length (Graph.label_extent g "x"));
        check_int "in" 0 (List.length (Graph.in_edges g (Graph.N b))));
    t "find_node by name" (fun () ->
        let g, a, _, _ = mk () in
        check_bool "found" true
          (match Graph.find_node g "a" with
           | Some o -> Oid.equal o a
           | None -> false);
        check_bool "missing" true (Graph.find_node g "zzz" = None));
    t "labels in first-seen order" (fun () ->
        let g, _, _, _ = mk () in
        Alcotest.(check (list string)) "labels" [ "x"; "y"; "z" ]
          (Graph.labels g));
  ]

let collections =
  [
    t "collection membership" (fun () ->
        let g, a, b, _ = mk () in
        Graph.add_to_collection g "C" a;
        Graph.add_to_collection g "C" b;
        Graph.add_to_collection g "D" a;
        check_int "size" 2 (Graph.collection_size g "C");
        check_bool "mem" true (Graph.in_collection g "C" a);
        Alcotest.(check (list string)) "of a" [ "C"; "D" ]
          (Graph.collections_of g a));
    t "collection duplicate add ignored" (fun () ->
        let g, a, _, _ = mk () in
        Graph.add_to_collection g "C" a;
        Graph.add_to_collection g "C" a;
        check_int "size" 1 (Graph.collection_size g "C"));
    t "collection preserves insertion order" (fun () ->
        let g, a, b, c = mk () in
        Graph.add_to_collection g "C" c;
        Graph.add_to_collection g "C" a;
        Graph.add_to_collection g "C" b;
        Alcotest.(check (list string)) "order" [ "c"; "a"; "b" ]
          (List.map Oid.name (Graph.collection g "C")));
    t "remove_from_collection" (fun () ->
        let g, a, b, _ = mk () in
        Graph.add_to_collection g "C" a;
        Graph.add_to_collection g "C" b;
        Graph.remove_from_collection g "C" a;
        check_int "size" 1 (Graph.collection_size g "C");
        check_bool "gone" false (Graph.in_collection g "C" a));
    t "unknown collection empty" (fun () ->
        let g, _, _, _ = mk () in
        check_int "empty" 0 (Graph.collection_size g "nope");
        Alcotest.(check (list string)) "none" [] (Graph.collections g));
  ]

let indexes =
  [
    t "label_extent" (fun () ->
        let g, _, _, _ = mk () in
        check_int "x" 2 (List.length (Graph.label_extent g "x"));
        check_int "count" 2 (Graph.label_count g "x"));
    t "value_index global" (fun () ->
        let g, _, _, _ = mk () in
        check_int "int 1" 2 (List.length (Graph.value_index g (Value.Int 1)));
        check_int "missing" 0
          (List.length (Graph.value_index g (Value.Int 99))));
    t "indexed and unindexed agree" (fun () ->
        let mk2 indexed =
          let g = Graph.create ~indexed ~name:"t" () in
          let a = Graph.new_node g "a" and b = Graph.new_node g "b" in
          Graph.add_edge g a "x" (Graph.N b);
          Graph.add_edge g a "y" (Graph.V (Value.Int 1));
          Graph.add_edge g b "y" (Graph.V (Value.Int 1));
          g
        in
        let gi = mk2 true and gu = mk2 false in
        check_int "extent"
          (List.length (Graph.label_extent gi "y"))
          (List.length (Graph.label_extent gu "y"));
        check_int "value idx"
          (List.length (Graph.value_index gi (Value.Int 1)))
          (List.length (Graph.value_index gu (Value.Int 1)));
        check_int "in_edges"
          (List.length (Graph.in_edges gi (Graph.V (Value.Int 1))))
          (List.length (Graph.in_edges gu (Graph.V (Value.Int 1)))));
  ]

let whole_graph =
  [
    t "copy preserves everything" (fun () ->
        let g, a, _, _ = mk () in
        Graph.add_to_collection g "C" a;
        let g' = Graph.copy g in
        check_int "nodes" (Graph.node_count g) (Graph.node_count g');
        check_int "edges" (Graph.edge_count g) (Graph.edge_count g');
        check_int "coll" 1 (Graph.collection_size g' "C");
        (* mutation of the copy does not affect the original *)
        let d = Graph.new_node g' "d" in
        Graph.add_edge g' d "w" (Graph.V Value.Null);
        check_int "orig nodes" 3 (Graph.node_count g));
    t "merge_into shares objects" (fun () ->
        let g, a, _, _ = mk () in
        let h = Graph.create ~name:"h" () in
        let z = Graph.new_node h "z" in
        Graph.add_edge h z "to" (Graph.N a);
        (* a is shared between graphs *)
        Graph.merge_into ~dst:h ~src:g;
        check_int "nodes" 4 (Graph.node_count h);
        check_int "edges" 6 (Graph.edge_count h);
        check_bool "shared" true (Graph.mem_node h a));
    t "iter/fold_edges visit every edge once" (fun () ->
        let g, _, _, _ = mk () in
        let n = ref 0 in
        Graph.iter_edges (fun _ _ _ -> incr n) g;
        check_int "iter" 5 !n;
        check_int "fold" 5 (Graph.fold_edges (fun _ _ _ acc -> acc + 1) g 0));
  ]

(* qcheck: random mutation sequences keep indexes consistent with scans *)
type op =
  | Add_edge of int * string * int
  | Add_val of int * string * int
  | Remove of int
  | Collect of string * int

let op_gen =
  let open QCheck.Gen in
  oneof
    [
      map3 (fun a l b -> Add_edge (a, l, b)) (int_bound 9)
        (oneofl [ "x"; "y"; "z" ])
        (int_bound 9);
      map3 (fun a l v -> Add_val (a, l, v)) (int_bound 9)
        (oneofl [ "x"; "y" ]) (int_bound 4);
      map (fun i -> Remove i) (int_bound 30);
      map2 (fun c i -> Collect (c, i)) (oneofl [ "C"; "D" ]) (int_bound 9);
    ]

let apply_ops ~indexed ops =
  let g = Graph.create ~indexed ~name:"q" () in
  let nodes = Array.init 10 (fun i -> Oid.fresh (string_of_int i)) in
  Array.iter (Graph.add_node g) nodes;
  let edges = ref [] in
  List.iter
    (fun op ->
      match op with
      | Add_edge (a, l, b) ->
        Graph.add_edge g nodes.(a) l (Graph.N nodes.(b));
        edges := (nodes.(a), l, Graph.N nodes.(b)) :: !edges
      | Add_val (a, l, v) ->
        Graph.add_edge g nodes.(a) l (Graph.V (Value.Int v));
        edges := (nodes.(a), l, Graph.V (Value.Int v)) :: !edges
      | Remove i ->
        (match List.nth_opt !edges i with
         | Some (s, l, tgt) -> Graph.remove_edge g s l tgt
         | None -> ())
      | Collect (c, i) -> Graph.add_to_collection g c nodes.(i))
    ops;
  g

(* Same op sequence on indexed and unindexed graphs must agree on every
   observable. *)
let indexes_consistent ops =
  let gi = apply_ops ~indexed:true ops
  and gu = apply_ops ~indexed:false ops in
  let norm l = List.sort compare l in
  Graph.edge_count gi = Graph.edge_count gu
  && List.for_all
       (fun l ->
         norm
           (List.map
              (fun (s, t) -> (Oid.name s, Fmt.str "%a" Graph.pp_target t))
              (Graph.label_extent gi l))
         = norm
             (List.map
                (fun (s, t) -> (Oid.name s, Fmt.str "%a" Graph.pp_target t))
                (Graph.label_extent gu l)))
       [ "x"; "y"; "z" ]
  && List.for_all
       (fun v ->
         norm (List.map (fun (s, l) -> (Oid.name s, l)) (Graph.value_index gi v))
         = norm
             (List.map (fun (s, l) -> (Oid.name s, l)) (Graph.value_index gu v)))
       (List.init 5 (fun i -> Value.Int i))

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"indexed/unindexed graphs agree" ~count:200
         (QCheck.make QCheck.Gen.(list_size (int_range 0 40) op_gen))
         indexes_consistent);
  ]

let suite = basics @ collections @ indexes @ whole_graph @ props
