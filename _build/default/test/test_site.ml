open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

let paper =
  [
    t "paper example builds 11 pages" (fun () ->
        let b = Sites.Paper_example.build () in
        check_int "pages" 11
          (Template.Generator.page_count b.Strudel.Site.site));
    t "site graph census matches the paper's fig 4 shape" (fun () ->
        let b = Sites.Paper_example.build () in
        let sg = b.Strudel.Site.site_graph in
        check_int "2 year pages" 2
          (List.length (Schema.Verify.family_members sg "YearPage"));
        check_int "3 category pages" 3
          (List.length (Schema.Verify.family_members sg "CategoryPage"));
        check_int "2 presentations" 2
          (List.length (Schema.Verify.family_members sg "PaperPresentation"));
        check_int "2 abstract pages" 2
          (List.length (Schema.Verify.family_members sg "AbstractPage"));
        check_int "1 root" 1 (List.length (Schema.Verify.family_members sg "RootPage")));
    t "all declared constraints hold" (fun () ->
        let b = Sites.Paper_example.build () in
        check_bool "no violations" true (Strudel.Site.violations b = []));
    t "root page lists years ascending" (fun () ->
        let b = Sites.Paper_example.build () in
        let root =
          List.hd (Schema.Verify.family_members b.Strudel.Site.site_graph "RootPage")
        in
        let page =
          Option.get (Template.Generator.page_of_object b.Strudel.Site.site root)
        in
        let html = page.Template.Generator.html in
        let i97 = ref 0 and i98 = ref 0 in
        String.iteri
          (fun i c ->
            if c = '1' && i + 4 <= String.length html then begin
              if String.sub html i 4 = "1997" && !i97 = 0 then i97 := i;
              if String.sub html i 4 = "1998" && !i98 = 0 then i98 := i
            end)
          html;
        check_bool "1997 before 1998" true (!i97 > 0 && !i98 > !i97));
    t "paper presentation renders venue conditionally" (fun () ->
        let b = Sites.Paper_example.build () in
        let sg = b.Strudel.Site.site_graph in
        let pages = Schema.Verify.family_members sg "PaperPresentation" in
        let htmls =
          List.map
            (fun o ->
              (Option.get (Template.Generator.page_of_object b.Strudel.Site.site o))
                .Template.Generator.html)
            pages
        in
        check_bool "journal appears once" true
          (List.exists (fun h -> contains h "Transactions on") htmls);
        check_bool "booktitle appears once" true
          (List.exists (fun h -> contains h "Proc. of ICDE") htmls));
    t "spec stats computed" (fun () ->
        let s = Strudel.Site.spec_stats Sites.Paper_example.definition in
        check_int "1 query" 1 s.Strudel.Site.query_count;
        check_int "11 links" 11 s.Strudel.Site.link_clauses;
        check_int "6 templates" 6 s.Strudel.Site.template_count;
        check_bool "lines counted" true (s.Strudel.Site.query_lines > 20));
    t "build fails with unknown root family" (fun () ->
        let def =
          { Sites.Paper_example.definition with Strudel.Site.root_family = "Nope" }
        in
        check_bool "raises" true
          (try
             ignore (Strudel.Site.build ~data:(Sites.Paper_example.data ()) def);
             false
           with Strudel.Site.Build_error _ -> true));
    t "regenerate swaps presentation only" (fun () ->
        let b = Sites.Paper_example.build () in
        let plain =
          {
            Template.Generator.empty_templates with
            Template.Generator.by_collection = [ ("RootPages", "MINIMAL") ];
          }
        in
        let b2 = Strudel.Site.regenerate b plain in
        check_bool "same site graph" true
          (b2.Strudel.Site.site_graph == b.Strudel.Site.site_graph);
        let root =
          List.hd (Schema.Verify.family_members b2.Strudel.Site.site_graph "RootPage")
        in
        let page =
          Option.get (Template.Generator.page_of_object b2.Strudel.Site.site root)
        in
        check_bool "new template used" true
          (contains page.Template.Generator.html "MINIMAL"));
    t "multiple queries compose into one site" (fun () ->
        let def =
          Strudel.Site.define ~name:"two" ~root_family:"R"
            [
              ("q1", {|WHERE Publications(x) CREATE R(), P(x) LINK R() -> "p" -> P(x) COLLECT Roots(R()) OUTPUT o|});
              ("q2", {|WHERE Publications(x), x -> "title" -> v CREATE P(x) LINK P(x) -> "t" -> v OUTPUT o|});
            ]
        in
        let b = Strudel.Site.build ~data:(Sites.Paper_example.data ()) def in
        let sg = b.Strudel.Site.site_graph in
        check_int "2 schemas" 2 (List.length b.Strudel.Site.schemas);
        let p = List.hd (Schema.Verify.family_members sg "P") in
        check_int "titled by q2" 1 (List.length (Graph.attr sg p "t")));
    t "api build_site convenience" (fun () ->
        let b =
          Strudel.Api.build_site ~name:"x" ~root_family:"RootPage"
            ~query:Sites.Paper_example.site_query
            ~templates:Sites.Paper_example.templates
            (Sites.Paper_example.data ())
        in
        check_int "pages" 11 (Template.Generator.page_count b.Strudel.Site.site));
    t "file_loader inlines text files end to end" (fun () ->
        let loader p =
          if p = "abstracts/toplas97.txt" then
            Some "We describe machine instructions."
          else None
        in
        let b =
          Strudel.Site.build ~file_loader:loader
            ~data:(Sites.Paper_example.data ())
            Sites.Paper_example.definition
        in
        let ap =
          List.find
            (fun o -> Oid.name o = "AbstractPage(pub1)")
            (Graph.nodes b.Strudel.Site.site_graph)
        in
        let page =
          Option.get (Template.Generator.page_of_object b.Strudel.Site.site ap)
        in
        check_bool "inlined" true
          (contains page.Template.Generator.html
             "<pre>We describe machine instructions.</pre>");
        (* without the loader, the same attribute is a link *)
        let b2 = Sites.Paper_example.build () in
        let ap2 =
          List.find
            (fun o -> Oid.name o = "AbstractPage(pub1)")
            (Graph.nodes b2.Strudel.Site.site_graph)
        in
        let page2 =
          Option.get
            (Template.Generator.page_of_object b2.Strudel.Site.site ap2)
        in
        check_bool "linked" true
          (contains page2.Template.Generator.html
             {|<a href="abstracts/toplas97.txt">|}));
    t "api query helper" (fun () ->
        let g =
          Strudel.Api.query (Sites.Paper_example.data ())
            {|WHERE Publications(x) COLLECT All(x) OUTPUT o|}
        in
        check_int "2" 2 (Graph.collection_size g "All"));
  ]

let suite = paper
