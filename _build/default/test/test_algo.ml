open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* r -> a -> b -> c, r -> d, isolated e, cycle f <-> g *)
let mk () =
  let g = Graph.create ~name:"al" () in
  let n s = Graph.new_node g s in
  let r = n "r" and a = n "a" and b = n "b" and c = n "c" and d = n "d" in
  let e = n "e" and f = n "f" and h = n "h" in
  Graph.add_edge g r "l" (Graph.N a);
  Graph.add_edge g a "l" (Graph.N b);
  Graph.add_edge g b "l" (Graph.N c);
  Graph.add_edge g r "m" (Graph.N d);
  Graph.add_edge g f "l" (Graph.N h);
  Graph.add_edge g h "l" (Graph.N f);
  (g, r, a, b, c, d, e, f, h)

let suite =
  [
    t "reachable" (fun () ->
        let g, r, _, _, _, _, _, _, _ = mk () in
        check_int "5 reachable" 5 (Oid.Set.cardinal (Algo.reachable g [ r ])));
    t "reachable includes root itself" (fun () ->
        let g, r, _, _, _, _, _, _, _ = mk () in
        check_bool "r" true (Oid.Set.mem r (Algo.reachable g [ r ])));
    t "reachable_via restricts labels" (fun () ->
        let g, r, _, _, _, _, _, _, _ = mk () in
        check_int "only l" 4
          (Oid.Set.cardinal (Algo.reachable_via g ~pred:(fun l -> l = "l") [ r ])));
    t "unreachable_nodes" (fun () ->
        let g, r, _, _, _, _, _, _, _ = mk () in
        check_int "3 unreachable" 3 (List.length (Algo.unreachable_nodes g [ r ])));
    t "distances" (fun () ->
        let g, r, _, b, c, d, _, _, _ = mk () in
        let dist = Algo.distances g r in
        check_int "b" 2 (Oid.Map.find b dist);
        check_int "c" 3 (Oid.Map.find c dist);
        check_int "d" 1 (Oid.Map.find d dist);
        check_int "r" 0 (Oid.Map.find r dist));
    t "has_path" (fun () ->
        let g, r, _, _, c, _, e, _, _ = mk () in
        check_bool "r->c" true (Algo.has_path g r c);
        check_bool "r->e" false (Algo.has_path g r e);
        check_bool "c->r" false (Algo.has_path g c r));
    t "predecessors" (fun () ->
        let g, r, a, b, c, _, _, _, _ = mk () in
        let preds = Algo.predecessors g [ c ] in
        check_bool "includes chain" true
          (Oid.Set.mem r preds && Oid.Set.mem a preds && Oid.Set.mem b preds);
        check_int "4 total" 4 (Oid.Set.cardinal preds));
    t "scc finds the cycle" (fun () ->
        let g, _, _, _, _, _, _, f, h = mk () in
        let sccs = Algo.strongly_connected_components g in
        let cyc =
          List.find_opt (fun comp -> List.length comp = 2) sccs
        in
        check_bool "cycle comp" true
          (match cyc with
           | Some comp ->
             List.exists (Oid.equal f) comp && List.exists (Oid.equal h) comp
           | None -> false);
        check_int "total comps" 7 (List.length sccs));
    t "is_dag" (fun () ->
        let g, _, _, _, _, _, _, _, _ = mk () in
        check_bool "cyclic" false (Algo.is_dag g);
        let g2 = Graph.create () in
        let x = Graph.new_node g2 "x" and y = Graph.new_node g2 "y" in
        Graph.add_edge g2 x "l" (Graph.N y);
        check_bool "dag" true (Algo.is_dag g2);
        Graph.add_edge g2 y "l" (Graph.N y);
        check_bool "self loop" false (Algo.is_dag g2));
    t "deep chain does not overflow" (fun () ->
        let g = Graph.create () in
        let first = Graph.new_node g "n0" in
        let prev = ref first in
        for i = 1 to 50_000 do
          let o = Graph.new_node g (Printf.sprintf "n%d" i) in
          Graph.add_edge g !prev "l" (Graph.N o);
          prev := o
        done;
        check_int "all reachable" 50_001
          (Oid.Set.cardinal (Algo.reachable g [ first ])));
  ]
