open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let graph_signature g =
  let edges =
    Graph.fold_edges
      (fun s l tgt acc ->
        let tk =
          match tgt with
          | Graph.N o -> "N:" ^ Oid.name o
          | Graph.V v -> "V:" ^ Value.to_string v
        in
        (Oid.name s, l, tk) :: acc)
      g []
    |> List.sort compare
  in
  let colls =
    List.map
      (fun c ->
        (c, List.sort compare (List.map Oid.name (Graph.collection g c))))
      (List.sort compare (Graph.collections g))
  in
  (List.sort compare (List.map Oid.name (Graph.nodes g)), edges, colls)

let exchange =
  [
    t "export/import roundtrip on fig2" (fun () ->
        let g, _ = Ddl.parse Sites.Paper_example.data_ddl in
        let g' = Xml.import (Xml.export g) in
        check_bool "signature" true (graph_signature g = graph_signature g'));
    t "export is stable" (fun () ->
        let g, _ = Ddl.parse Sites.Paper_example.data_ddl in
        let x1 = Xml.export g in
        let x2 = Xml.export (Xml.import x1) in
        check_str "stable" x1 x2);
    t "value types survive" (fun () ->
        let g, _ = Ddl.parse Sites.Paper_example.data_ddl in
        let g' = Xml.import (Xml.export g) in
        let p1 = Option.get (Graph.find_node g' "pub1") in
        check_bool "int year" true
          (Graph.attr_value g' p1 "year" = Some (Value.Int 1997));
        check_bool "ps file" true
          (match Graph.attr_value g' p1 "postscript" with
           | Some (Value.File (Value.Postscript, _)) -> true
           | _ -> false);
        check_bool "text file" true
          (match Graph.attr_value g' p1 "abstract" with
           | Some (Value.File (Value.Text, _)) -> true
           | _ -> false));
    t "escaping of markup characters" (fun () ->
        let g = Graph.create () in
        let o = Graph.new_node g "o" in
        Graph.add_edge g o "t" (Graph.V (Value.String "a < b & \"c\" > d"));
        let g' = Xml.import (Xml.export g) in
        let o' = Option.get (Graph.find_node g' "o") in
        check_bool "escaped roundtrip" true
          (Graph.attr_value g' o' "t" = Some (Value.String "a < b & \"c\" > d")));
    t "non-name labels use attr elements" (fun () ->
        let g = Graph.create () in
        let o = Graph.new_node g "o" in
        Graph.add_edge g o "weird label!" (Graph.V (Value.Int 1));
        let xml = Xml.export g in
        check_bool "attr element" true
          (let needle = {|<attr name="weird label!"|} in
           let n = String.length needle and h = String.length xml in
           let rec find i =
             i + n <= h && (String.sub xml i n = needle || find (i + 1))
           in
           find 0);
        let g' = Xml.import xml in
        let o' = Option.get (Graph.find_node g' "o") in
        check_bool "label survives" true
          (Graph.attr_value g' o' "weird label!" = Some (Value.Int 1)));
    t "references including forward" (fun () ->
        let src =
          {|<graph name="t">
            <object id="a"><next ref="b"/></object>
            <object id="b"><prev ref="a"/></object>
            </graph>|}
        in
        let g = Xml.import src in
        let a = Option.get (Graph.find_node g "a") in
        let b = Option.get (Graph.find_node g "b") in
        check_bool "fwd" true (Graph.has_edge g a "next" (Graph.N b));
        check_bool "back" true (Graph.has_edge g b "prev" (Graph.N a)));
    t "collections via in attribute" (fun () ->
        let g =
          Xml.import {|<graph name="t"><object id="a" in="C D"/></graph>|}
        in
        let a = Option.get (Graph.find_node g "a") in
        Alcotest.(check (list string)) "colls" [ "C"; "D" ]
          (Graph.collections_of g a));
    t "comments, declarations and doctype skipped" (fun () ->
        let g =
          Xml.import
            "<?xml version=\"1.0\"?><!DOCTYPE graph><!-- hi -->\n\
             <graph name=\"t\"><!-- inner --><object id=\"a\"/></graph>"
        in
        check_int "1 node" 1 (Graph.node_count g));
    t "errors" (fun () ->
        let raises src =
          try
            ignore (Xml.import src);
            false
          with Xml.Xml_error _ -> true
        in
        check_bool "not graph root" true (raises "<x/>");
        check_bool "mismatched close" true
          (raises "<graph name=\"t\"><object id=\"a\"></x></graph>");
        check_bool "unknown ref" true
          (raises
             {|<graph name="t"><object id="a"><r ref="zz"/></object></graph>|});
        check_bool "unterminated" true (raises "<graph name=\"t\">"));
  ]

let generic =
  [
    t "parse_element structure" (fun () ->
        let e =
          Xml.parse_element
            {|<doc a="1"><s>hi &amp; ho</s><t x='2'/></doc>|}
        in
        check_str "tag" "doc" e.Xml.tag;
        check_bool "attr" true (e.Xml.attrs = [ ("a", "1") ]);
        check_int "2 children" 2 (List.length e.Xml.children);
        match e.Xml.children with
        | [ Xml.Element s; Xml.Element t' ] ->
          check_bool "text decoded" true
            (s.Xml.children = [ Xml.Text "hi & ho" ]);
          check_bool "single-quoted attr" true (t'.Xml.attrs = [ ("x", "2") ])
        | _ -> Alcotest.fail "bad children");
    t "numeric character references" (fun () ->
        let e = Xml.parse_element "<a>&#65;&#x42;</a>" in
        check_bool "AB" true (e.Xml.children = [ Xml.Text "AB" ]));
    t "wrap_document builds a graph" (fun () ->
        let e =
          Xml.parse_element
            {|<book title="T"><ch n="1">one</ch><ch n="2"><sec>deep</sec></ch></book>|}
        in
        let g = Graph.create () in
        let root = Xml.wrap_document g ~name:"book" e in
        check_bool "tag attr" true
          (Graph.attr_value g root "tag" = Some (Value.String "book"));
        check_bool "xml attr" true
          (Graph.attr_value g root "@title" = Some (Value.String "T"));
        check_int "2 children" 2 (List.length (Graph.attr g root "child"));
        (* a StruQL query over the wrapped XML *)
        let hits =
          Strudel.Api.query g
            {|WHERE Documents(d), d -> "child"* -> c, c -> "text" -> t
              COLLECT Texts(c) OUTPUT o|}
        in
        check_int "text-bearing descendants" 2
          (Graph.collection_size hits "Texts"));
  ]

let suite = exchange @ generic
