open Sgraph
open Strudel

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* click-time pages must be byte-identical to the full build's pages *)
let pages_match def data =
  let full = Site.build ~data def in
  let ct = Materialize.Click_time.start ~data def in
  let full_pages =
    List.map
      (fun (p : Template.Generator.page) ->
        (Oid.name p.Template.Generator.obj, p.Template.Generator.html))
      full.Site.site.Template.Generator.pages
  in
  List.for_all
    (fun (name, html) ->
      (* find the click-time node with the same skolem name *)
      match
        List.find_opt
          (fun o -> Oid.name o = name)
          (Graph.nodes full.Site.site_graph)
      with
      | None -> false
      | Some o_full ->
        (* walk the click-time graph to the same term *)
        (match Skolem.term_of full.Site.scope o_full with
         | None -> true (* non-skolem page: skip *)
         | Some _ ->
           (* browse by name: find after expansion from the roots *)
           let find_by_name () =
             List.find_opt (fun o -> Oid.name o = name)
               (Graph.nodes ct.Materialize.Click_time.partial)
           in
           (* force full expansion by walking everything reachable *)
           let rec expand_all frontier =
             match frontier with
             | [] -> ()
             | o :: rest ->
               Materialize.Click_time.expand ct o;
               let succs =
                 List.filter_map
                   (fun (_, tgt) ->
                     match tgt with
                     | Graph.N n
                       when not
                              (Oid.Set.mem n
                                 ct.Materialize.Click_time.expanded) ->
                       Some n
                     | _ -> None)
                   (Graph.out_edges ct.Materialize.Click_time.partial o)
               in
               expand_all (succs @ rest)
           in
           expand_all (Materialize.Click_time.roots ct);
           (match find_by_name () with
            | None -> false
            | Some o -> Materialize.Click_time.browse ct o = html)))
    full_pages

let suite =
  [
    t "full materialization equals Site.build" (fun () ->
        let data = Sites.Paper_example.data () in
        let b = Materialize.full ~data Sites.Paper_example.definition in
        check_int "pages" 11 (Template.Generator.page_count b.Site.site));
    t "click-time starts with only the roots" (fun () ->
        let data = Sites.Paper_example.data () in
        let ct =
          Materialize.Click_time.start ~data Sites.Paper_example.definition
        in
        check_int "1 root" 1 (List.length (Materialize.Click_time.roots ct));
        let st = Materialize.Click_time.stats ct in
        check_bool "tiny partial graph" true
          (st.Materialize.Click_time.materialized_nodes <= 2));
    t "click-time pages equal full pages (paper example)" (fun () ->
        check_bool "identical" true
          (pages_match Sites.Paper_example.definition (Sites.Paper_example.data ())));
    t "click-time pages equal full pages (homepage)" (fun () ->
        check_bool "identical" true
          (pages_match Sites.Homepage.definition (Sites.Homepage.data ~entries:8 ())));
    t "browsing materializes only what is needed" (fun () ->
        let data = Sites.Homepage.data ~entries:40 () in
        let full = Site.build ~data Sites.Homepage.definition in
        let ct = Materialize.Click_time.start ~data Sites.Homepage.definition in
        let root = List.hd (Materialize.Click_time.roots ct) in
        ignore (Materialize.Click_time.browse ct root);
        let st = Materialize.Click_time.stats ct in
        check_bool "fraction materialized" true
          (st.Materialize.Click_time.materialized_edges
           < Graph.edge_count full.Site.site_graph));
    t "page cache avoids recomputation" (fun () ->
        let data = Sites.Paper_example.data () in
        let ct =
          Materialize.Click_time.start ~cache:true ~data
            Sites.Paper_example.definition
        in
        let root = List.hd (Materialize.Click_time.roots ct) in
        let h1 = Materialize.Click_time.browse ct root in
        let h2 = Materialize.Click_time.browse ct root in
        Alcotest.(check string) "same html" h1 h2;
        let st = Materialize.Click_time.stats ct in
        check_int "1 hit" 1 st.Materialize.Click_time.cache_hits);
    t "random walk is deterministic and terminates" (fun () ->
        let data = Sites.Paper_example.data () in
        let walk () =
          let ct =
            Materialize.Click_time.start ~data Sites.Paper_example.definition
          in
          let v = Materialize.Click_time.random_walk ct ~clicks:15 ~seed:3 in
          (v, (Materialize.Click_time.stats ct).Materialize.Click_time.queries)
        in
        check_bool "deterministic" true (walk () = walk ());
        check_int "visited all clicks" 15 (fst (walk ())));
  ]
