(* Whole-pipeline properties under randomized data: click-time pages
   are byte-identical to full materialization; incremental rebuild
   equals a full rebuild after arbitrary mutations; decomposed queries
   reproduce the site graph. *)

open Sgraph

let page_map (site : Template.Generator.site) =
  List.map
    (fun (p : Template.Generator.page) ->
      (Oid.name p.Template.Generator.obj, p.Template.Generator.html))
    site.Template.Generator.pages
  |> List.sort compare

(* random mutations over a news data graph *)
type mutation =
  | Set_headline of int * string
  | Set_body of int * string
  | Add_section of int * string
  | Drop_article_attr of int        (* remove the byline if present *)
  | Add_related of int * int

let mutation_gen articles =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun i s -> Set_headline (i, "H" ^ s))
        (int_bound (articles - 1))
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
      map2 (fun i s -> Set_body (i, "B" ^ s))
        (int_bound (articles - 1))
        (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
      map2 (fun i s -> Add_section (i, s))
        (int_bound (articles - 1))
        (oneofl [ "Sports"; "Archive"; "Extra" ]);
      map (fun i -> Drop_article_attr i) (int_bound (articles - 1));
      map2 (fun i j -> Add_related (i, j))
        (int_bound (articles - 1))
        (int_bound (articles - 1));
    ]

let apply_mutations g articles muts =
  List.iter
    (fun m ->
      let art i = Graph.find_node g (Printf.sprintf "art%d" (i mod articles)) in
      match m with
      | Set_headline (i, s) -> (
          match art i with
          | Some a -> Graph.add_edge g a "headline" (Graph.V (Value.String s))
          | None -> ())
      | Set_body (i, s) -> (
          match art i with
          | Some a -> Graph.add_edge g a "body" (Graph.V (Value.String s))
          | None -> ())
      | Add_section (i, s) -> (
          match art i with
          | Some a -> Graph.add_edge g a "section" (Graph.V (Value.String s))
          | None -> ())
      | Drop_article_attr i -> (
          match art i with
          | Some a -> (
              match Graph.attr_value g a "byline" with
              | Some v -> Graph.remove_edge g a "byline" (Graph.V v)
              | None -> ())
          | None -> ())
      | Add_related (i, j) -> (
          match art i, art j with
          | Some a, Some b when not (Oid.equal a b) ->
            Graph.add_edge g a "related" (Graph.N b)
          | _ -> ()))
    muts

let articles = 15

let incremental_equals_full muts =
  let data0 = Sites.Cnn.data ~articles () in
  let previous = Strudel.Site.build ~data:data0 Sites.Cnn.definition in
  let data1 = Sites.Cnn.data ~articles () in
  apply_mutations data1 articles muts;
  let inc = Strudel.Incremental.rebuild ~previous ~data:data1 () in
  let full = Strudel.Site.build ~data:data1 Sites.Cnn.definition in
  page_map inc.Strudel.Incremental.built.Strudel.Site.site
  = page_map full.Strudel.Site.site

let clicktime_equals_full muts =
  let data = Sites.Cnn.data ~articles () in
  apply_mutations data articles muts;
  let full = Strudel.Site.build ~data Sites.Cnn.definition in
  let ct = Strudel.Materialize.Click_time.start ~data Sites.Cnn.definition in
  (* expand everything reachable *)
  let rec expand_all frontier =
    match frontier with
    | [] -> ()
    | o :: rest ->
      Strudel.Materialize.Click_time.expand ct o;
      let succs =
        List.filter_map
          (fun (_, tgt) ->
            match tgt with
            | Graph.N n
              when not
                     (Oid.Set.mem n ct.Strudel.Materialize.Click_time.expanded)
              ->
              Some n
            | _ -> None)
          (Graph.out_edges ct.Strudel.Materialize.Click_time.partial o)
      in
      expand_all (succs @ rest)
  in
  expand_all (Strudel.Materialize.Click_time.roots ct);
  List.for_all
    (fun (p : Template.Generator.page) ->
      match
        List.find_opt
          (fun o -> Oid.name o = Oid.name p.Template.Generator.obj)
          (Graph.nodes ct.Strudel.Materialize.Click_time.partial)
      with
      | Some o ->
        Strudel.Materialize.Click_time.browse ct o
        = p.Template.Generator.html
      | None -> false)
    full.Strudel.Site.site.Template.Generator.pages

let decompose_equals_direct muts =
  let data = Sites.Cnn.data ~articles () in
  apply_mutations data articles muts;
  let q = Struql.Parser.parse Sites.Cnn.general_query in
  let direct = Struql.Eval.run data q in
  let composed =
    Schema.Decompose.run_all (Schema.Decompose.of_query q) data
  in
  let census g =
    ( Graph.node_count g,
      Graph.edge_count g,
      List.sort compare
        (List.map (fun l -> (l, Graph.label_count g l)) (Graph.labels g)) )
  in
  census direct = census composed

let muts_arb =
  QCheck.make QCheck.Gen.(list_size (int_range 0 8) (mutation_gen articles))

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"incremental rebuild equals full rebuild (random mutations)"
         ~count:25 muts_arb incremental_equals_full);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"click-time pages equal full pages (random mutations)"
         ~count:15 muts_arb clicktime_equals_full);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"decomposed queries equal direct evaluation (random mutations)"
         ~count:25 muts_arb decompose_equals_direct);
  ]
