open Sgraph
open Repository

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let graph_signature g =
  let edges =
    Graph.fold_edges
      (fun s l tgt acc ->
        let tk =
          match tgt with
          | Graph.N o -> "N:" ^ Oid.name o
          | Graph.V v -> "V:" ^ Value.to_string v
        in
        (Oid.name s, l, tk) :: acc)
      g []
    |> List.sort compare
  in
  let colls =
    List.map
      (fun c ->
        (c, List.sort compare (List.map Oid.name (Graph.collection g c))))
      (List.sort compare (Graph.collections g))
  in
  ( Graph.name g,
    List.sort compare (List.map Oid.name (Graph.nodes g)),
    edges, colls )

let roundtrip =
  [
    t "fig2 roundtrip" (fun () ->
        let g, _ = Ddl.parse ~graph_name:"BIBTEX" Sites.Paper_example.data_ddl in
        let g' = Binary.decode (Binary.encode g) in
        check_bool "signature" true (graph_signature g = graph_signature g'));
    t "site graph roundtrip" (fun () ->
        let b = Sites.Paper_example.build () in
        let sg = b.Strudel.Site.site_graph in
        let sg' = Binary.decode (Binary.encode sg) in
        check_bool "signature" true (graph_signature sg = graph_signature sg'));
    t "all value kinds survive" (fun () ->
        let g = Graph.create ~name:"vals" () in
        let o = Graph.new_node g "o" in
        List.iteri
          (fun i v -> Graph.add_edge g o (Printf.sprintf "a%d" i) (Graph.V v))
          [ Value.Null; Value.Bool true; Value.Bool false; Value.Int 42;
            Value.Int (-7); Value.Int max_int; Value.Float 2.5;
            Value.Float (-0.0); Value.Float 1e300; Value.Float (-1e-300);
            Value.String "hello \"world\"\n"; Value.Url "http://x/y";
            Value.File (Value.Postscript, "a.ps");
            Value.File (Value.Other_file "pdf", "b.pdf") ];
        let g' = Binary.decode (Binary.encode g) in
        check_bool "signature" true (graph_signature g = graph_signature g'));
    t "string interning shares labels" (fun () ->
        (* many edges with the same label must not repeat the string *)
        let g = Graph.create ~name:"i" () in
        let long = String.make 200 'x' in
        for i = 0 to 99 do
          let o = Graph.new_node g (Printf.sprintf "n%d" i) in
          Graph.add_edge g o long (Graph.V (Value.Int i))
        done;
        let bytes = String.length (Binary.encode g) in
        check_bool "label stored once" true (bytes < 200 * 10));
    t "binary is smaller than the DDL text" (fun () ->
        (* unique article text dominates the news graph, so the gain is
           modest there; structured data with repeated values compresses
           hard *)
        let news = Wrappers.Synth.news_graph ~articles:100 () in
        check_bool "news: smaller" true
          (String.length (Binary.encode news)
           < String.length (Ddl.print news));
        let org = Graph.create ~name:"org" () in
        let pc, oc = Wrappers.Synth.org_csv ~people:200 ~orgs:10 () in
        ignore
          (Wrappers.Csv.load_tables org
             [ Wrappers.Csv.table_of_string ~name:"People" pc;
               Wrappers.Csv.table_of_string ~name:"Orgs" oc ]);
        let bin = String.length (Binary.encode org) in
        let ddl = String.length (Ddl.print org) in
        check_bool
          (Printf.sprintf "org: bin=%d vs ddl=%d" bin ddl)
          true (bin * 3 < ddl * 2));
    t "decode rebuilds indexes" (fun () ->
        let g = Wrappers.Synth.news_graph ~articles:30 () in
        let g' = Binary.decode (Binary.encode g) in
        check_int "label extent" (Graph.label_count g "section")
          (Graph.label_count g' "section");
        check_int "value index"
          (List.length (Graph.value_index g (Value.String "Sports")))
          (List.length (Graph.value_index g' (Value.String "Sports"))));
    t "save/load files" (fun () ->
        let g, _ = Ddl.parse Sites.Paper_example.data_ddl in
        let path = Filename.temp_file "strudel" ".sgbin" in
        Binary.save ~path g;
        let g' = Binary.load ~path () in
        Sys.remove path;
        check_bool "signature" true (graph_signature g = graph_signature g'));
  ]

let errors =
  let corrupt name f =
    t name (fun () ->
        check_bool "raises" true
          (try
             ignore (Binary.decode (f ()));
             false
           with Binary.Corrupt _ -> true))
  in
  [
    corrupt "bad magic" (fun () -> "NOTBIN" ^ String.make 10 '\x00');
    corrupt "truncated" (fun () ->
        let g, _ = Ddl.parse "object a { x 1 }" in
        let s = Binary.encode g in
        String.sub s 0 (String.length s - 3));
    corrupt "trailing garbage" (fun () ->
        let g, _ = Ddl.parse "object a { x 1 }" in
        Binary.encode g ^ "zz");
    corrupt "empty input" (fun () -> "");
  ]

(* qcheck: random graphs survive binary roundtrip (reuses test_ddl's
   generator shape) *)
let rand_graph_gen =
  let open QCheck.Gen in
  let* n = int_range 1 8 in
  let* edges =
    list_size (int_range 0 15)
      (triple (int_bound (n - 1))
         (oneofl [ "x"; "y"; "weird label" ])
         (oneof
            [
              map (fun i -> `V (Value.Int i)) small_signed_int;
              map (fun s -> `V (Value.String s))
                (string_size ~gen:printable (int_range 0 6));
              map (fun f -> `V (Value.Float (float_of_int f))) small_signed_int;
              map (fun j -> `N j) (int_bound (n - 1));
            ]))
  in
  let* colls =
    list_size (int_range 0 4) (pair (oneofl [ "C"; "D" ]) (int_bound (n - 1)))
  in
  return (n, edges, colls)

let build_rand (n, edges, colls) =
  let g = Graph.create ~name:"r" () in
  let nodes = Array.init n (fun i -> Oid.fresh (Printf.sprintf "n%d" i)) in
  Array.iter (Graph.add_node g) nodes;
  List.iter
    (fun (a, l, tgt) ->
      match tgt with
      | `V v -> Graph.add_edge g nodes.(a) l (Graph.V v)
      | `N j -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(j)))
    edges;
  List.iter (fun (c, i) -> Graph.add_to_collection g c nodes.(i)) colls;
  g

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random graphs survive binary roundtrip"
         ~count:300 (QCheck.make rand_graph_gen) (fun spec ->
           let g = build_rand spec in
           graph_signature g = graph_signature (Binary.decode (Binary.encode g))));
  ]

let suite = roundtrip @ errors @ props
