open Sgraph
open Schema

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

let is_holds = function Verify.Holds -> true | _ -> false
let is_violated = function Verify.Violated _ -> true | _ -> false
let is_unknown = function Verify.Unknown _ -> true | _ -> false

(* a site graph with skolem-style node names *)
let mk_site () =
  let g = Graph.create ~name:"s" () in
  let root = Graph.new_node g "Home()" in
  let y1 = Graph.new_node g "YearPage(1997)" in
  let y2 = Graph.new_node g "YearPage(1998)" in
  let p1 = Graph.new_node g "Paper(pub1)" in
  let orphan = Graph.new_node g "Paper(lost)" in
  Graph.add_edge g root "Year" (Graph.N y1);
  Graph.add_edge g root "Year" (Graph.N y2);
  Graph.add_edge g y1 "Paper" (Graph.N p1);
  Graph.add_edge g y2 "Paper" (Graph.N p1);
  Graph.add_edge g p1 "secret" (Graph.V (Value.String "classified"));
  (g, root, orphan)

let family =
  [
    t "family_of_node" (fun () ->
        check_bool "year" true
          (Verify.family_of_node (Oid.fresh "YearPage(1997)") = Some "YearPage");
        check_bool "nullary" true
          (Verify.family_of_node (Oid.fresh "Home()") = Some "Home");
        check_bool "plain" true (Verify.family_of_node (Oid.fresh "pub1") = None);
        check_bool "nested parens" true
          (Verify.family_of_node (Oid.fresh "F(G(x))") = Some "F"));
  ]

let site_checks =
  [
    t "reachable_from violated by orphan" (fun () ->
        let g, _, _ = mk_site () in
        check_bool "violated" true
          (is_violated (Verify.check_site g (Verify.Reachable_from "Home"))));
    t "reachable_from holds without orphan" (fun () ->
        let g, _, orphan = mk_site () in
        Graph.add_edge g
          (Option.get (Graph.find_node g "Home()"))
          "Stray" (Graph.N orphan);
        check_bool "holds" true
          (is_holds (Verify.check_site g (Verify.Reachable_from "Home"))));
    t "reachable_from with missing root family" (fun () ->
        let g, _, _ = mk_site () in
        check_bool "violated" true
          (is_violated (Verify.check_site g (Verify.Reachable_from "Nowhere"))));
    t "points_to holds" (fun () ->
        let g, _, _ = mk_site () in
        check_bool "holds" true
          (is_holds
             (Verify.check_site g (Verify.Points_to ("YearPage", "Paper", "Paper")))));
    t "points_to violated by missing link" (fun () ->
        let g, _, _ = mk_site () in
        check_bool "violated" true
          (is_violated
             (Verify.check_site g
                (Verify.Points_to ("YearPage", "Paper", "Home")))));
    t "no_edge" (fun () ->
        let g, _, _ = mk_site () in
        check_bool "violated on root" true
          (is_violated (Verify.check_site g (Verify.No_edge ("Home", "Year"))));
        check_bool "holds elsewhere" true
          (is_holds (Verify.check_site g (Verify.No_edge ("YearPage", "Year")))));
    t "no_attribute_anywhere" (fun () ->
        let g, _, _ = mk_site () in
        check_bool "secret found" true
          (is_violated
             (Verify.check_site g (Verify.No_attribute_anywhere "secret")));
        check_bool "clean label" true
          (is_holds
             (Verify.check_site g (Verify.No_attribute_anywhere "proprietary"))));
    t "acyclic_links" (fun () ->
        let g, root, _ = mk_site () in
        check_bool "acyclic" true
          (is_holds (Verify.check_site g (Verify.Acyclic_links "Year")));
        let y1 = Option.get (Graph.find_node g "YearPage(1997)") in
        Graph.add_edge g y1 "Year" (Graph.N root);
        check_bool "cycle detected" true
          (is_violated (Verify.check_site g (Verify.Acyclic_links "Year"))));
  ]

let schema_checks =
  let schema =
    Site_schema.of_query (Struql.Parser.parse Sites.Paper_example.site_query)
  in
  [
    t "static reachability holds on fig5" (fun () ->
        check_bool "holds" true
          (is_holds (Verify.check_schema schema (Verify.Reachable_from "RootPage"))));
    t "static reachability violated from a leaf family" (fun () ->
        check_bool "violated" true
          (is_violated
             (Verify.check_schema schema (Verify.Reachable_from "YearPage"))));
    t "static points_to is unknown when clause exists" (fun () ->
        check_bool "unknown" true
          (is_unknown
             (Verify.check_schema schema
                (Verify.Points_to ("YearPage", "Paper", "PaperPresentation")))));
    t "static points_to violated when no clause can fire" (fun () ->
        check_bool "violated" true
          (is_violated
             (Verify.check_schema schema
                (Verify.Points_to ("YearPage", "Nope", "PaperPresentation")))));
    t "static no_edge: exact label violation" (fun () ->
        check_bool "violated" true
          (is_violated
             (Verify.check_schema schema (Verify.No_edge ("RootPage", "YearPage")))));
    t "static no_edge: arc variable gives unknown" (fun () ->
        check_bool "unknown" true
          (is_unknown
             (Verify.check_schema schema
                (Verify.No_edge ("PaperPresentation", "whatever")))));
    t "static no_attribute: clean label holds" (fun () ->
        (* the query has an arc-variable link clause, so any label could
           in principle appear: Unknown, not Holds *)
        check_bool "unknown" true
          (is_unknown
             (Verify.check_schema schema
                (Verify.No_attribute_anywhere "proprietary"))));
    t "static acyclic on fig5" (fun () ->
        check_bool "holds" true
          (is_holds (Verify.check_schema schema (Verify.Acyclic_links "YearPage"))));
    t "static acyclic unknown on self-referential family" (fun () ->
        let s =
          Site_schema.of_query
            (Struql.Parser.parse
               {|WHERE C(x), x -> "sub" -> y CREATE F(x), F(y)
                 LINK F(x) -> "Sub" -> F(y)|})
        in
        check_bool "unknown" true
          (is_unknown (Verify.check_schema s (Verify.Acyclic_links "Sub"))));
    t "check_all convenience" (fun () ->
        let g, _, _ = mk_site () in
        let results =
          Verify.check_all_site g
            [ Verify.No_attribute_anywhere "secret"; Verify.Acyclic_links "Year" ]
        in
        Alcotest.(check int) "2 results" 2 (List.length results));
  ]

let suite = family @ site_checks @ schema_checks
