open Sgraph
open Template

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

let mk_site_graph () =
  let g = Graph.create ~name:"sg" () in
  let root = Graph.new_node g "Root()" in
  let a = Graph.new_node g "Page(a)" in
  let b = Graph.new_node g "Page(b)" in
  Graph.add_to_collection g "Roots" root;
  Graph.add_to_collection g "Pages" a;
  Graph.add_to_collection g "Pages" b;
  Graph.add_edge g root "Child" (Graph.N a);
  Graph.add_edge g root "Child" (Graph.N b);
  Graph.add_edge g a "title" (Graph.V (Value.String "Page A"));
  Graph.add_edge g b "title" (Graph.V (Value.String "Page B"));
  (g, root, a, b)

let templates =
  {
    Generator.by_object = [];
    by_collection =
      [
        ("Roots", {|<h1>Root</h1><SFMTLIST @Child>|});
        ("Pages", {|<h2><SFMT @title></h2>|});
      ];
    named = [];
  }

let generation =
  [
    t "pages discovered transitively from roots" (fun () ->
        let g, root, _, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        check_int "3 pages" 3 (Generator.page_count site));
    t "collection template selected" (fun () ->
        let g, root, a, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let pa = Option.get (Generator.page_of_object site a) in
        check_bool "rendered with Pages tpl" true
          (contains pa.Generator.html "<h2>Page A</h2>"));
    t "object template beats collection template" (fun () ->
        let g, root, a, _ = mk_site_graph () in
        let templates =
          { templates with Generator.by_object = [ ("Page(a)", "SPECIAL") ] }
        in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let pa = Option.get (Generator.page_of_object site a) in
        check_bool "special" true (contains pa.Generator.html "SPECIAL"));
    t "HTML-template attribute beats collection template" (fun () ->
        let g, root, a, _ = mk_site_graph () in
        Graph.add_edge g a "HTML-template" (Graph.V (Value.String "alt"));
        let templates =
          { templates with Generator.named = [ ("alt", "NAMED <SFMT @title>") ] }
        in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let pa = Option.get (Generator.page_of_object site a) in
        check_bool "named used" true (contains pa.Generator.html "NAMED Page A"));
    t "unknown HTML-template name raises" (fun () ->
        let g, root, a, _ = mk_site_graph () in
        Graph.add_edge g a "HTML-template" (Graph.V (Value.String "missing"));
        check_bool "raises" true
          (try ignore (Generator.generate ~templates g ~roots:[ root ]); false
           with Generator.Generator_error _ -> true));
    t "object without template gets property sheet" (fun () ->
        let g, root, _, _ = mk_site_graph () in
        let site =
          Generator.generate ~templates:Generator.empty_templates g
            ~roots:[ root ]
        in
        let pr = Option.get (Generator.page_of_object site root) in
        check_bool "dl rendering" true (contains pr.Generator.html "<dl>"));
    t "links use anchors from title attr" (fun () ->
        let g, root, _, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let pr = Option.get (Generator.page_of_object site root) in
        check_bool "anchor" true (contains pr.Generator.html ">Page A</a>"));
    t "urls unique even with colliding slugs" (fun () ->
        let g = Graph.create () in
        let r = Graph.new_node g "R()" in
        let a = Graph.new_node g "P(x y)" in
        let b = Graph.new_node g "P(x.y)" in
        Graph.add_edge g r "c" (Graph.N a);
        Graph.add_edge g r "c" (Graph.N b);
        let site = Generator.generate g ~roots:[ r ] in
        let urls = List.map (fun p -> p.Generator.url) site.Generator.pages in
        check_int "3 urls distinct" 3
          (List.length (List.sort_uniq compare urls)));
    t "embedding cycle degrades to link" (fun () ->
        let g = Graph.create () in
        let a = Graph.new_node g "A()" and b = Graph.new_node g "B()" in
        Graph.add_to_collection g "Cyc" a;
        Graph.add_to_collection g "Cyc" b;
        Graph.add_edge g a "next" (Graph.N b);
        Graph.add_edge g b "next" (Graph.N a);
        let templates =
          {
            Generator.empty_templates with
            Generator.by_collection = [ ("Cyc", "[<SFMT @next EMBED>]") ];
          }
        in
        let site = Generator.generate ~templates g ~roots:[ a ] in
        let pa = Option.get (Generator.page_of_object site a) in
        (* a embeds b, b's embed of a becomes a link *)
        check_bool "cycle broken" true (contains pa.Generator.html "<a href="));
    t "page wrapping adds html scaffold once" (fun () ->
        let g, root, _, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let pr = Option.get (Generator.page_of_object site root) in
        check_bool "wrapped" true (contains pr.Generator.html "<html>");
        check_bool "title tag" true (contains pr.Generator.html "<title>"));
    t "template already containing html not rewrapped" (fun () ->
        let g = Graph.create () in
        let r = Graph.new_node g "R()" in
        Graph.add_to_collection g "Rs" r;
        let templates =
          {
            Generator.empty_templates with
            Generator.by_collection = [ ("Rs", "<html><body>X</body></html>") ];
          }
        in
        let site = Generator.generate ~templates g ~roots:[ r ] in
        let pr = Option.get (Generator.page_of_object site r) in
        check_int "one html tag" 1
          (let h = pr.Generator.html in
           let rec count i acc =
             if i + 6 > String.length h then acc
             else if String.sub h i 6 = "<html>" then count (i + 6) (acc + 1)
             else count (i + 1) acc
           in
           count 0 0));
    t "render_page matches generate output for same object" (fun () ->
        let g, root, a, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let from_site = Option.get (Generator.page_of_object site a) in
        let single = Generator.render_page ~templates g a in
        Alcotest.(check string) "same html" from_site.Generator.html
          single.Generator.html);
    t "write_site produces files" (fun () ->
        let g, root, _, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        let dir = Filename.temp_file "strudelsite" "" in
        Sys.remove dir;
        Generator.write_site ~dir site;
        check_int "3 files" 3 (Array.length (Sys.readdir dir));
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir);
    t "total_bytes positive" (fun () ->
        let g, root, _, _ = mk_site_graph () in
        let site = Generator.generate ~templates g ~roots:[ root ] in
        check_bool "bytes" true (Generator.total_bytes site > 0));
  ]

let suite = generation
