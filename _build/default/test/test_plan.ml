open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_data n =
  let g = Graph.create ~name:"d" () in
  for i = 0 to n - 1 do
    let o = Graph.new_node g (Printf.sprintf "o%d" i) in
    Graph.add_to_collection g "C" o;
    if i mod 10 = 0 then Graph.add_to_collection g "Small" o;
    Graph.add_edge g o "a" (Graph.V (Value.Int (i mod 5)));
    Graph.add_edge g o "rare" (Graph.V (Value.Int i))
  done;
  g

let plan_for ?(strategy = Plan.Heuristic) ?(bound = []) ?(needed_obj = [])
    ?(needed_label = []) g src =
  Plan.plan ~strategy ~registry:Builtins.default g ~bound ~needed_obj
    ~needed_label
    (Parser.parse_conditions src)

(* every step must be executable given what previous steps bound; the
   universe is everything the plan will ever bind (negated variables
   outside it are existential) *)
let well_ordered bound0 steps =
  let universe =
    List.fold_left
      (fun u s -> List.fold_left (fun u v -> Plan.VSet.add v u) u (Plan.step_binds s))
      (List.fold_left (fun b v -> Plan.VSet.add v b) Plan.VSet.empty bound0)
      steps
  in
  let rec go bound = function
    | [] -> true
    | s :: rest ->
      let ok =
        match s with
        | Plan.Exec c -> Plan.executable ~universe bound c
        | Plan.Domain_obj _ | Plan.Domain_label _ -> true
      in
      ok
      && go
           (List.fold_left (fun b v -> Plan.VSet.add v b) bound
              (Plan.step_binds s))
           rest
  in
  go (List.fold_left (fun b v -> Plan.VSet.add v b) Plan.VSet.empty bound0) steps

let strategies = [ Plan.Naive; Plan.Heuristic; Plan.Cost_based ]

let suite =
  [
    t "all strategies produce well-ordered plans" (fun () ->
        let g = mk_data 50 in
        let srcs =
          [
            {|C(x), x -> "a" -> v, v = 3|};
            {|x -> "a" -> v, C(x), not(isNull(v))|};
            {|C(x), x -> l -> v, l = "rare", Small(x)|};
            {|not(p -> l -> q)|};
            {|C(x), x -> * -> y|};
          ]
        in
        List.iter
          (fun src ->
            List.iter
              (fun strategy ->
                let steps = plan_for ~strategy g src in
                check_bool ("ordered: " ^ src) true (well_ordered [] steps))
              strategies)
          srcs);
    t "filters are not scheduled before their variables bind" (fun () ->
        let g = mk_data 50 in
        (* textual order puts the filter first; every planner must move it *)
        let steps = plan_for ~strategy:Plan.Naive g {|v = 3, C(x), x -> "a" -> v|} in
        check_bool "naive reorders" true (well_ordered [] steps));
    t "domain steps inserted for unbindable variables" (fun () ->
        let g = mk_data 10 in
        let steps = plan_for g ~needed_obj:[ "p"; "q" ] ~needed_label:[ "l" ]
            {|not(p -> l -> q)|} in
        let domains =
          List.filter
            (function Plan.Domain_obj _ | Plan.Domain_label _ -> true
                    | Plan.Exec _ -> false)
            steps
        in
        check_int "3 domain steps" 3 (List.length domains);
        check_bool "label var gets label domain" true
          (List.exists (function Plan.Domain_label "l" -> true | _ -> false) steps));
    t "no domain steps when conditions bind everything" (fun () ->
        let g = mk_data 10 in
        let steps = plan_for g ~needed_obj:[ "x"; "v" ] {|C(x), x -> "a" -> v|} in
        check_bool "no domains" true
          (List.for_all (function Plan.Exec _ -> true | _ -> false) steps));
    t "heuristic prefers the small collection first" (fun () ->
        let g = mk_data 100 in
        let steps = plan_for ~strategy:Plan.Heuristic g {|C(x), Small(x)|} in
        match steps with
        | Plan.Exec (Plan.CC_coll ("Small", _)) :: _ -> ()
        | _ -> Alcotest.fail "expected Small first");
    t "cost-based agrees on result with heuristic (crafted join)" (fun () ->
        let g = mk_data 200 in
        let conds = {|C(x), x -> "a" -> v, Small(y), y -> "a" -> v|} in
        let run strategy =
          Eval.bindings
            ~options:{ Eval.default_options with strategy }
            g
            (Parser.parse_conditions conds)
          |> List.length
        in
        check_int "same cardinality" (run Plan.Heuristic) (run Plan.Cost_based);
        check_int "naive too" (run Plan.Heuristic) (run Plan.Naive));
    t "atom resolution: extern vs collection" (fun () ->
        let g = mk_data 5 in
        let steps = plan_for g {|C(x), isNull(x)|} in
        let kinds =
          List.filter_map
            (function
              | Plan.Exec (Plan.CC_coll (n, _)) -> Some ("coll:" ^ n)
              | Plan.Exec (Plan.CC_extern (n, _)) -> Some ("ext:" ^ n)
              | _ -> None)
            steps
        in
        check_bool "both kinds" true
          (List.mem "coll:C" kinds && List.mem "ext:isNull" kinds));
    t "atom with wrong arity rejected at plan time" (fun () ->
        let g = mk_data 5 in
        check_bool "raises" true
          (try ignore (plan_for g "Collection(x, y)"); false
           with Plan.Plan_error _ -> true));
    t "cost-based handles >14 conditions via fallback" (fun () ->
        let g = mk_data 20 in
        let conds =
          String.concat ", "
            (List.init 16 (fun i -> Printf.sprintf {|x%d -> "a" -> v%d|} i i))
        in
        let steps = plan_for ~strategy:Plan.Cost_based g conds in
        check_int "16 steps" 16 (List.length steps));
    t "limited access patterns: probe scheduled after its binder"
      (fun () ->
        let g = mk_data 20 in
        (* pretend collection C is a source that can only be probed with
           a bound object, e.g. a lookup-only Web service *)
        List.iter
          (fun strategy ->
            let steps =
              Plan.plan ~strategy ~limited:[ "Small" ]
                ~registry:Builtins.default g ~bound:[] ~needed_obj:[]
                ~needed_label:[]
                (Parser.parse_conditions {|Small(x), C(y), y -> "a" -> v, C(x)|})
            in
            (* the Small probe must come after something binding x *)
            let rec position i pred = function
              | [] -> -1
              | s :: rest -> if pred s then i else position (i + 1) pred rest
            in
            let probe_pos =
              position 0
                (function
                  | Plan.Exec (Plan.CC_coll ("Small", _)) -> true
                  | _ -> false)
                steps
            in
            let binder_pos =
              position 0
                (function
                  | Plan.Exec (Plan.CC_coll ("C", Ast.T_var "x")) -> true
                  | _ -> false)
                steps
            in
            check_bool "probe after binder" true (probe_pos > binder_pos))
          strategies);
    t "limited source with no binder has no plan" (fun () ->
        let g = mk_data 10 in
        check_bool "raises" true
          (try
             ignore
               (Plan.plan ~limited:[ "Small" ] ~registry:Builtins.default g
                  ~bound:[] ~needed_obj:[] ~needed_label:[]
                  (Parser.parse_conditions "Small(x)"));
             false
           with Plan.No_plan _ -> true));
    t "limited plan still evaluates correctly" (fun () ->
        let g = mk_data 50 in
        let conds = Parser.parse_conditions {|C(x), Small(x)|} in
        let steps =
          Plan.plan ~limited:[ "Small" ] ~registry:Builtins.default g
            ~bound:[] ~needed_obj:[] ~needed_label:[] conds
        in
        let envs =
          Eval.exec_steps g Builtins.default [ Eval.Env.empty ] steps
        in
        check_int "5 members of Small" 5 (List.length envs));
    t "estimates are finite and positive for executable steps" (fun () ->
        let g = mk_data 50 in
        let st = Plan.stats_of_graph g in
        List.iter
          (fun c ->
            let fanout, work = Plan.estimate st Plan.VSet.empty c in
            check_bool "finite" true
              (Float.is_finite fanout && Float.is_finite work && fanout >= 0.
               && work >= 0.))
          (List.map (Plan.compile Builtins.default)
             (Parser.parse_conditions
                {|C(x), x -> "a" -> v, x -> l -> w, x -> * -> y|})));
  ]
