open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let bib_sample =
  {|% a comment
@string{sigmod = "Proc. of SIGMOD"}
@article{toplas97,
  title = {Specifying {R}epresentations},
  author = {Norman Ramsey and Mary Fernandez},
  year = 1997,
  journal = "TOPLAS",
  volume = {19 (3)},
  abstract = {abstracts/toplas97.txt},
  postscript = {papers/toplas97.ps.gz},
  keywords = {Architecture, Languages}
}
@inproceedings{demo97,
  title = {System Demonstration - Strudel},
  author = {Mary Fernandez},
  booktitle = sigmod # {, 1997},
  year = {1997},
  url = {http://www.research.att.com/strudel}
}
@comment{ ignored stuff {nested} }
|}

let bibtex =
  [
    t "parses entries, skips comments and strings" (fun () ->
        let g, os = Wrappers.Bibtex.load bib_sample in
        check_int "2 entries" 2 (List.length os);
        check_int "collection" 2 (Graph.collection_size g "Publications"));
    t "entry type recorded" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        check_bool "article" true
          (Graph.attr_value g e "pub-type" = Some (Value.String "article")));
    t "authors split on and" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        check_int "2 authors" 2 (List.length (Graph.attr g e "author"));
        check_bool "first author" true
          (Graph.attr_value g e "author" = Some (Value.String "Norman Ramsey")));
    t "keyed authors preserve order" (fun () ->
        let g, _ = Wrappers.Bibtex.load ~keyed_authors:true bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        match Graph.attr g e "author" with
        | [ Graph.N a0; Graph.N a1 ] ->
          check_bool "keys" true
            (Graph.attr_value g a0 "key" = Some (Value.Int 0)
             && Graph.attr_value g a1 "key" = Some (Value.Int 1));
          check_bool "names" true
            (Graph.attr_value g a1 "name" = Some (Value.String "Mary Fernandez"))
        | _ -> Alcotest.fail "expected nested author objects");
    t "braces stripped, whitespace collapsed" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        check_bool "title" true
          (Graph.attr_value g e "title"
           = Some (Value.String "Specifying Representations")));
    t "year is an int" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        check_bool "int" true (Graph.attr_value g e "year" = Some (Value.Int 1997)));
    t "file fields typed" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        check_bool "ps" true
          (match Graph.attr_value g e "postscript" with
           | Some (Value.File (Value.Postscript, _)) -> true
           | _ -> false);
        check_bool "abstract text" true
          (match Graph.attr_value g e "abstract" with
           | Some (Value.File (Value.Text, _)) -> true
           | _ -> false));
    t "url field typed" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "demo97") in
        check_bool "url" true
          (match Graph.attr_value g e "url" with
           | Some (Value.Url _) -> true
           | _ -> false));
    t "macro expansion and concatenation" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "demo97") in
        check_bool "booktitle" true
          (Graph.attr_value g e "booktitle"
           = Some (Value.String "Proc. of SIGMOD, 1997")));
    t "keywords become categories" (fun () ->
        let g, _ = Wrappers.Bibtex.load bib_sample in
        let e = Option.get (Graph.find_node g "toplas97") in
        check_int "2 categories" 2 (List.length (Graph.attr g e "category")));
    t "error on malformed entry" (fun () ->
        check_bool "raises" true
          (try ignore (Wrappers.Bibtex.load "@article{x, title = }"); false
           with Wrappers.Bibtex.Bibtex_error _ -> true));
  ]

let csv_sample = "login,name,phone,boss\np1,\"Doe, Jane\",555,&p2\np2,John,,\n"

let csv =
  [
    t "rows and quoting" (fun () ->
        let g, os = Wrappers.Csv.load ~name:"People" csv_sample in
        check_int "2 rows" 2 (List.length os);
        let p1 = Option.get (Graph.find_node g "p1") in
        check_bool "quoted comma" true
          (Graph.attr_value g p1 "name" = Some (Value.String "Doe, Jane")));
    t "empty cells produce no edge" (fun () ->
        let g, _ = Wrappers.Csv.load ~name:"People" csv_sample in
        let p2 = Option.get (Graph.find_node g "p2") in
        check_bool "no phone" true (Graph.attr_value g p2 "phone" = None));
    t "references resolve" (fun () ->
        let g, _ = Wrappers.Csv.load ~name:"People" csv_sample in
        let p1 = Option.get (Graph.find_node g "p1") in
        let p2 = Option.get (Graph.find_node g "p2") in
        check_bool "boss ref" true (Graph.has_edge g p1 "boss" (Graph.N p2)));
    t "numeric cells typed" (fun () ->
        let g, _ = Wrappers.Csv.load ~name:"People" csv_sample in
        let p1 = Option.get (Graph.find_node g "p1") in
        check_bool "int" true (Graph.attr_value g p1 "phone" = Some (Value.Int 555)));
    t "multi-valued cells split on semicolon" (fun () ->
        let g, _ = Wrappers.Csv.load ~name:"T" "k,tags\na,x;y;z\n" in
        let a = Option.get (Graph.find_node g "a") in
        check_int "3 tags" 3 (List.length (Graph.attr g a "tags")));
    t "cross-table references with load_tables" (fun () ->
        let g = Graph.create () in
        ignore
          (Wrappers.Csv.load_tables g
             [
               Wrappers.Csv.table_of_string ~name:"A" "id,to\na1,&b1\n";
               Wrappers.Csv.table_of_string ~name:"B" "id,back\nb1,&a1\n";
             ]);
        let a1 = Option.get (Graph.find_node g "a1") in
        let b1 = Option.get (Graph.find_node g "b1") in
        check_bool "a->b" true (Graph.has_edge g a1 "to" (Graph.N b1));
        check_bool "b->a" true (Graph.has_edge g b1 "back" (Graph.N a1)));
    t "dangling reference kept as string" (fun () ->
        let g, _ = Wrappers.Csv.load ~name:"T" "id,to\nx,&nope\n" in
        let x = Option.get (Graph.find_node g "x") in
        check_bool "string" true
          (Graph.attr_value g x "to" = Some (Value.String "&nope")));
    t "quoted newline in field" (fun () ->
        let g, _ = Wrappers.Csv.load ~name:"T" "id,note\nx,\"a\nb\"\n" in
        let x = Option.get (Graph.find_node g "x") in
        check_bool "newline" true
          (Graph.attr_value g x "note" = Some (Value.String "a\nb")));
    t "key column selection" (fun () ->
        let g, _ =
          Wrappers.Csv.load ~key:"login" ~name:"T" "dept,login\nsales,bob\n"
        in
        check_bool "named by login" true (Graph.find_node g "bob" <> None));
  ]

let structured_sample =
  {|id: strudel
in: Projects
name: STRUDEL
member: mff
member: suciu
budget: 100

# a comment
id: lore
in: Projects
in: Featured
name: LORE
doc: text "docs/lore.txt"
partner: &strudel
|}

let structured =
  [
    t "blocks and collections" (fun () ->
        let g, os = Wrappers.Structured_file.load structured_sample in
        check_int "2 objects" 2 (List.length os);
        check_int "projects" 2 (Graph.collection_size g "Projects");
        check_int "featured" 1 (Graph.collection_size g "Featured"));
    t "repeated keys multi-valued" (fun () ->
        let g, _ = Wrappers.Structured_file.load structured_sample in
        let s = Option.get (Graph.find_node g "strudel") in
        check_int "2 members" 2 (List.length (Graph.attr g s "member")));
    t "typed values" (fun () ->
        let g, _ = Wrappers.Structured_file.load structured_sample in
        let s = Option.get (Graph.find_node g "strudel") in
        let l = Option.get (Graph.find_node g "lore") in
        check_bool "int" true (Graph.attr_value g s "budget" = Some (Value.Int 100));
        check_bool "text file" true
          (match Graph.attr_value g l "doc" with
           | Some (Value.File (Value.Text, "docs/lore.txt")) -> true
           | _ -> false));
    t "references between blocks" (fun () ->
        let g, _ = Wrappers.Structured_file.load structured_sample in
        let s = Option.get (Graph.find_node g "strudel") in
        let l = Option.get (Graph.find_node g "lore") in
        check_bool "partner" true (Graph.has_edge g l "partner" (Graph.N s)));
    t "error without separator" (fun () ->
        check_bool "raises" true
          (try ignore (Wrappers.Structured_file.load "id x"); false
           with Wrappers.Structured_file.Structured_error _ -> true));
  ]

let html_sample =
  {|<html><head><title>My Page</title></head>
<body><h1>Welcome</h1>
<p>Some <b>text</b> here.</p>
<a href="other.html">Other</a>
<a href="http://x.org/a">External</a>
<img src="pic.gif">
</body></html>|}

let html =
  [
    t "title extracted" (fun () ->
        let g, os = Wrappers.Html_wrapper.load_pages [ ("p", html_sample) ] in
        let o = List.hd os in
        check_bool "title" true
          (Graph.attr_value g o "title" = Some (Value.String "My Page")));
    t "headings extracted" (fun () ->
        let g, os = Wrappers.Html_wrapper.load_pages [ ("p", html_sample) ] in
        let o = List.hd os in
        check_bool "h1" true
          (Graph.attr_value g o "heading" = Some (Value.String "Welcome")));
    t "links become nested objects" (fun () ->
        let g, os = Wrappers.Html_wrapper.load_pages [ ("p", html_sample) ] in
        let o = List.hd os in
        let links = Graph.attr g o "link" in
        check_int "2 links" 2 (List.length links);
        match links with
        | Graph.N l :: _ ->
          check_bool "href" true
            (Graph.attr_value g l "href" = Some (Value.String "other.html"));
          check_bool "anchor" true
            (Graph.attr_value g l "anchor" = Some (Value.String "Other"))
        | _ -> Alcotest.fail "expected link object");
    t "absolute url typed" (fun () ->
        let g, os = Wrappers.Html_wrapper.load_pages [ ("p", html_sample) ] in
        let o = List.hd os in
        check_bool "url" true
          (List.exists
             (fun tgt ->
               match tgt with
               | Graph.N l -> (
                   match Graph.attr_value g l "href" with
                   | Some (Value.Url _) -> true
                   | _ -> false)
               | _ -> false)
             (Graph.attr g o "link")));
    t "images extracted" (fun () ->
        let g, os = Wrappers.Html_wrapper.load_pages [ ("p", html_sample) ] in
        let o = List.hd os in
        check_bool "img" true
          (match Graph.attr_value g o "image" with
           | Some (Value.File (Value.Image, "pic.gif")) -> true
           | _ -> false));
    t "text stripped of tags" (fun () ->
        let g, os = Wrappers.Html_wrapper.load_pages [ ("p", html_sample) ] in
        let o = List.hd os in
        match Graph.attr_value g o "text" with
        | Some (Value.String s) ->
          check_bool "no tags" true (not (String.contains s '<'));
          check_bool "has words" true (String.length s > 10)
        | _ -> Alcotest.fail "no text");
  ]

let synth =
  [
    t "generators are deterministic" (fun () ->
        check_str "bibtex" (Wrappers.Synth.bibtex ~entries:5 ())
          (Wrappers.Synth.bibtex ~entries:5 ());
        let p1, o1 = Wrappers.Synth.org_csv ~people:5 ~orgs:2 () in
        let p2, o2 = Wrappers.Synth.org_csv ~people:5 ~orgs:2 () in
        check_str "people" p1 p2;
        check_str "orgs" o1 o2);
    t "seeds change output" (fun () ->
        check_bool "different" true
          (Wrappers.Synth.bibtex ~seed:1 ~entries:5 ()
           <> Wrappers.Synth.bibtex ~seed:2 ~entries:5 ()));
    t "synthetic bibtex is parseable at size" (fun () ->
        let g, os = Wrappers.Bibtex.load (Wrappers.Synth.bibtex ~entries:100 ()) in
        check_int "100 pubs" 100 (List.length os);
        check_bool "irregular: some lack abstracts" true
          (List.exists (fun o -> Graph.attr_value g o "abstract" = None) os);
        check_bool "some have abstracts" true
          (List.exists (fun o -> Graph.attr_value g o "abstract" <> None) os));
    t "news graph shape" (fun () ->
        let g = Wrappers.Synth.news_graph ~articles:40 () in
        check_int "40 articles" 40 (Graph.collection_size g "Articles");
        check_bool "multi-section articles exist" true
          (List.exists
             (fun o -> List.length (Graph.attr g o "section") > 1)
             (Graph.collection g "Articles")));
    t "org csv loads with irregularities" (fun () ->
        let pc, oc = Wrappers.Synth.org_csv ~people:50 ~orgs:5 () in
        let g = Graph.create () in
        ignore
          (Wrappers.Csv.load_tables g
             [
               Wrappers.Csv.table_of_string ~name:"People" pc;
               Wrappers.Csv.table_of_string ~name:"Orgs" oc;
             ]);
        check_int "people" 50 (Graph.collection_size g "People");
        let people = Graph.collection g "People" in
        check_bool "some lack phone" true
          (List.exists (fun p -> Graph.attr_value g p "phone" = None) people);
        check_bool "org refs are nodes" true
          (List.exists
             (fun p ->
               match Graph.attr1 g p "org" with
               | Some (Graph.N _) -> true
               | _ -> false)
             people));
  ]

let suite = bibtex @ csv @ structured @ html @ synth
