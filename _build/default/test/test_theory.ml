(* The paper's expressive-power claims, executed.

   "Surprisingly, StruQL can express transitive closure of an
   arbitrary relation as the composition of two queries" — a single
   where–link query cannot (it follows from [BUN 96]), but encoding the
   relation as graph edges with the first query and closing with a
   regular path expression in the second can. *)

open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* an arbitrary binary relation encoded as tuple objects *)
let relation_graph (pairs : (int * int) list) =
  let g = Graph.create ~name:"REL" () in
  List.iteri
    (fun i (a, b) ->
      let t' = Graph.new_node g (Printf.sprintf "t%d" i) in
      Graph.add_to_collection g "R" t';
      Graph.add_edge g t' "fst" (Graph.V (Value.Int a));
      Graph.add_edge g t' "snd" (Graph.V (Value.Int b)))
    pairs;
  g

(* query 1: reify the relation as edges between element nodes *)
let q1 =
  {|WHERE R(t), t -> "fst" -> a, t -> "snd" -> b
    CREATE N(a), N(b)
    LINK N(a) -> "e" -> N(b),
         N(a) -> "val" -> a, N(b) -> "val" -> b
    COLLECT Nodes(N(a)), Nodes(N(b))
    OUTPUT G1|}

(* query 2: transitive closure via a regular path expression, reified
   back into tuple objects *)
let q2 =
  {|WHERE Nodes(x), x -> "e"+ -> y, x -> "val" -> a, y -> "val" -> b
    CREATE Pair(a, b)
    LINK Pair(a, b) -> "fst" -> a, Pair(a, b) -> "snd" -> b
    COLLECT TC(Pair(a, b))
    OUTPUT G2|}

(* independent reference: Warshall over the pair list *)
let closure_ref pairs =
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let s = ref (S.of_list pairs) in
  let changed = ref true in
  while !changed do
    changed := false;
    S.iter
      (fun (a, b) ->
        S.iter
          (fun (b', c) ->
            if b = b' && not (S.mem (a, c) !s) then begin
              s := S.add (a, c) !s;
              changed := true
            end)
          !s)
      !s
  done;
  S.elements !s

let struql_closure pairs =
  let g = relation_graph pairs in
  let g1 = Eval.run g (Parser.parse q1) in
  let g2 = Eval.run g1 (Parser.parse q2) in
  List.filter_map
    (fun o ->
      match Graph.attr_value g2 o "fst", Graph.attr_value g2 o "snd" with
      | Some (Value.Int a), Some (Value.Int b) -> Some (a, b)
      | _ -> None)
    (Graph.collection g2 "TC")
  |> List.sort_uniq compare

let cases =
  [
    ("chain", [ (1, 2); (2, 3); (3, 4) ]);
    ("cycle", [ (1, 2); (2, 3); (3, 1) ]);
    ("diamond", [ (1, 2); (1, 3); (2, 4); (3, 4) ]);
    ("self-loop", [ (1, 1); (1, 2) ]);
    ("disconnected", [ (1, 2); (5, 6) ]);
    ("dense", [ (1, 2); (2, 1); (2, 3); (3, 4); (4, 2); (5, 1) ]);
  ]

let pairs_gen =
  QCheck.Gen.(
    list_size (int_range 0 10)
      (pair (int_range 0 5) (int_range 0 5)))

let suite =
  List.map
    (fun (name, pairs) ->
      t ("transitive closure by query composition: " ^ name) (fun () ->
          check_bool "equals Warshall" true
            (struql_closure pairs = closure_ref pairs)))
    cases
  @ [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:"TC by composition equals Warshall (random relations)"
           ~count:100
           (QCheck.make
              ~print:(fun ps ->
                String.concat ";"
                  (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ps))
              pairs_gen)
           (fun pairs ->
             let pairs = List.sort_uniq compare pairs in
             struql_closure pairs = closure_ref pairs));
      t "a single query's closure is over graph paths, not the relation"
        (fun () ->
          (* sanity for the [BUN 96] remark: without reification, the
             tuple encoding has no e-paths to close over *)
          let g = relation_graph [ (1, 2); (2, 3) ] in
          let out =
            Eval.run g
              (Parser.parse
                 {|WHERE R(t), t -> "e"+ -> u COLLECT Out(t) OUTPUT o|})
          in
          check_int "no matches" 0 (Graph.collection_size out "Out"));
    ]
