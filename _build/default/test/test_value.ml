open Sgraph

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let t name f = Alcotest.test_case name `Quick f

let coercion =
  [
    t "int = int" (fun () ->
        check "3=3" true (Value.coerce_equal (Value.Int 3) (Value.Int 3)));
    t "int <> int" (fun () ->
        check "3<>4" false (Value.coerce_equal (Value.Int 3) (Value.Int 4)));
    t "int = string-int" (fun () ->
        check "3=\"3\"" true
          (Value.coerce_equal (Value.Int 3) (Value.String "3")));
    t "string-int = int" (fun () ->
        check "\"1997\"=1997" true
          (Value.coerce_equal (Value.String "1997") (Value.Int 1997)));
    t "float = int" (fun () ->
        check "2.0=2" true (Value.coerce_equal (Value.Float 2.0) (Value.Int 2)));
    t "int = float order" (fun () ->
        Alcotest.(check (option int)) "1<2.5"
          (Some (-1))
          (Value.coerce_compare (Value.Int 1) (Value.Float 2.5)));
    t "float vs int reversed sign" (fun () ->
        Alcotest.(check (option int)) "2.5>1"
          (Some 1)
          (Value.coerce_compare (Value.Float 2.5) (Value.Int 1)));
    t "string = url" (fun () ->
        check "url=string" true
          (Value.coerce_equal (Value.Url "http://x") (Value.String "http://x")));
    t "bool = string-bool" (fun () ->
        check "true=\"true\"" true
          (Value.coerce_equal (Value.Bool true) (Value.String "true")));
    t "null = null" (fun () ->
        check "null=null" true (Value.coerce_equal Value.Null Value.Null));
    t "null incomparable with int" (fun () ->
        Alcotest.(check (option int)) "null?3" None
          (Value.coerce_compare Value.Null (Value.Int 3)));
    t "file compares by path" (fun () ->
        check "files" true
          (Value.coerce_equal
             (Value.File (Value.Text, "a.txt"))
             (Value.File (Value.Text, "a.txt"))));
    t "file incomparable with int" (fun () ->
        Alcotest.(check (option int)) "file?int" None
          (Value.coerce_compare (Value.File (Value.Text, "a")) (Value.Int 1)));
    t "non-numeric string vs int not equal" (fun () ->
        check "abc<>3" false
          (Value.coerce_equal (Value.String "abc") (Value.Int 3)));
    t "string ordering" (fun () ->
        Alcotest.(check (option int)) "a<b"
          (Some (-1))
          (match Value.coerce_compare (Value.String "a") (Value.String "b") with
           | Some c when c < 0 -> Some (-1)
           | x -> x));
  ]

let literals =
  [
    t "int literal" (fun () ->
        check "42" true (Value.of_literal "42" = Value.Int 42));
    t "negative int" (fun () ->
        check "-7" true (Value.of_literal "-7" = Value.Int (-7)));
    t "float literal" (fun () ->
        check "2.5" true (Value.of_literal "2.5" = Value.Float 2.5));
    t "bool literal" (fun () ->
        check "true" true (Value.of_literal "true" = Value.Bool true));
    t "null literal" (fun () ->
        check "null" true (Value.of_literal "null" = Value.Null));
    t "url literal" (fun () ->
        check "http" true
          (Value.of_literal "http://example.com" = Value.Url "http://example.com"));
    t "mailto url" (fun () ->
        check "mailto" true
          (Value.of_literal "mailto:x@y" = Value.Url "mailto:x@y"));
    t "plain string" (fun () ->
        check "hello" true (Value.of_literal "hello" = Value.String "hello"));
  ]

let display =
  [
    t "display null empty" (fun () ->
        check_str "null" "" (Value.to_display_string Value.Null));
    t "display int" (fun () ->
        check_str "int" "42" (Value.to_display_string (Value.Int 42)));
    t "display file path" (fun () ->
        check_str "file" "a/b.ps"
          (Value.to_display_string (Value.File (Value.Postscript, "a/b.ps"))));
    t "kind names" (fun () ->
        check_str "kind" "ps"
          (Value.kind_name (Value.File (Value.Postscript, "x")));
        check_str "kind2" "url" (Value.kind_name (Value.Url "u")));
    t "file kind roundtrip" (fun () ->
        List.iter
          (fun k ->
            check ("kind " ^ Value.file_kind_name k) true
              (Value.file_kind_of_name (Value.file_kind_name k) = Some k))
          [ Value.Text; Value.Postscript; Value.Image; Value.Html_file ]);
    t "predicates" (fun () ->
        check "is_postscript" true
          (Value.is_postscript (Value.File (Value.Postscript, "p")));
        check "is_image" true (Value.is_image (Value.File (Value.Image, "i")));
        check "is_url" true (Value.is_url (Value.Url "u"));
        check "not file" false (Value.is_file (Value.Int 3)));
  ]

(* printing then re-reading a value through the DDL value syntax *)
let pp_roundtrip_case v () =
  let printed = Value.to_string v in
  let src = Printf.sprintf "object o { a %s }" printed in
  let g, _ = Ddl.parse src in
  let o = Option.get (Graph.find_node g "o") in
  match Graph.attr_value g o "a" with
  | Some v' -> check ("roundtrip " ^ printed) true (Value.equal v v')
  | None -> Alcotest.fail "no value parsed"

let pp_roundtrip =
  [
    t "pp roundtrip int" (pp_roundtrip_case (Value.Int 42));
    t "pp roundtrip neg int" (pp_roundtrip_case (Value.Int (-3)));
    t "pp roundtrip float" (pp_roundtrip_case (Value.Float 2.5));
    t "pp roundtrip integral float stays float"
      (pp_roundtrip_case (Value.Float 2.0));
    t "pp roundtrip string" (pp_roundtrip_case (Value.String "hello world"));
    t "pp roundtrip string with quotes"
      (pp_roundtrip_case (Value.String "say \"hi\"\n\ttab"));
    t "pp roundtrip bool" (pp_roundtrip_case (Value.Bool false));
    t "pp roundtrip null" (pp_roundtrip_case Value.Null);
    t "pp roundtrip url" (pp_roundtrip_case (Value.Url "http://x/y?z=1"));
    t "pp roundtrip ps file"
      (pp_roundtrip_case (Value.File (Value.Postscript, "papers/a.ps.gz")));
    t "pp roundtrip other file"
      (pp_roundtrip_case (Value.File (Value.Other_file "pdf", "a.pdf")));
  ]

(* qcheck: coercion equality is symmetric; comparison antisymmetric *)
let value_gen =
  let open QCheck.Gen in
  oneof
    [
      return Value.Null;
      map (fun b -> Value.Bool b) bool;
      map (fun i -> Value.Int i) small_signed_int;
      map (fun f -> Value.Float (Float.of_int f)) small_signed_int;
      map (fun s -> Value.String s) (string_size ~gen:printable (int_range 0 8));
      map (fun s -> Value.Url ("http://" ^ s)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
      map (fun s -> Value.File (Value.Text, s)) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6));
    ]

let value_arb = QCheck.make ~print:Value.to_string value_gen

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"coerce_equal symmetric" ~count:500
         (QCheck.pair value_arb value_arb) (fun (a, b) ->
           Value.coerce_equal a b = Value.coerce_equal b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"coerce_compare antisymmetric" ~count:500
         (QCheck.pair value_arb value_arb) (fun (a, b) ->
           match Value.coerce_compare a b, Value.coerce_compare b a with
           | Some x, Some y -> compare x 0 = compare 0 y
           | None, None -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"coerce_equal reflexive" ~count:500 value_arb
         (fun v -> Value.coerce_equal v v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"value print/parse roundtrip" ~count:300
         value_arb (fun v ->
           let src = Printf.sprintf "object o { a %s }" (Value.to_string v) in
           let g, _ = Ddl.parse src in
           let o = Option.get (Graph.find_node g "o") in
           match Graph.attr_value g o "a" with
           | Some v' -> Value.equal v v'
           | None -> false));
  ]

let suite = coercion @ literals @ display @ pp_roundtrip @ props
