open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

let toks ?ident_dash src =
  List.map (fun s -> s.Lex.tok)
    (Lex.tokenize ?ident_dash ~puncts:[ "->"; "("; ")"; ","; "="; "!=" ] src)

let suite =
  [
    t "idents and puncts" (fun () ->
        check_bool "seq" true
          (toks "foo -> bar"
           = [ Lex.Ident "foo"; Lex.Punct "->"; Lex.Ident "bar"; Lex.Eof ]));
    t "longest punct match" (fun () ->
        check_bool "!= not ! =" true
          (toks "a != b"
           = [ Lex.Ident "a"; Lex.Punct "!="; Lex.Ident "b"; Lex.Eof ]));
    t "string with escapes" (fun () ->
        check_bool "escapes" true
          (toks {|"a\"b\n"|} = [ Lex.Str "a\"b\n"; Lex.Eof ]));
    t "numbers" (fun () ->
        check_bool "int" true (toks "42" = [ Lex.Int_lit 42; Lex.Eof ]);
        check_bool "neg" true (toks "-7" = [ Lex.Int_lit (-7); Lex.Eof ]);
        check_bool "float" true (toks "2.5" = [ Lex.Float_lit 2.5; Lex.Eof ]);
        check_bool "exp" true (toks "1.5e2" = [ Lex.Float_lit 150.; Lex.Eof ]));
    t "comments all three styles" (fun () ->
        check_bool "comments" true
          (toks "a // x\nb /* y\nz */ c # w\nd"
           = [ Lex.Ident "a"; Lex.Ident "b"; Lex.Ident "c"; Lex.Ident "d";
               Lex.Eof ]));
    t "ident_dash mode" (fun () ->
        check_bool "dash in ident" true
          (toks ~ident_dash:true "pub-type" = [ Lex.Ident "pub-type"; Lex.Eof ]));
    t "line numbers tracked" (fun () ->
        let spanned =
          Lex.tokenize ~puncts:[ "(" ] "a\nb\n\nc"
        in
        check_bool "lines" true
          (List.map (fun s -> s.Lex.line) spanned = [ 1; 2; 4; 4 ]));
    t "lex errors" (fun () ->
        check_bool "unterminated string" true
          (try ignore (toks "\"abc"); false with Lex.Lex_error _ -> true);
        check_bool "unknown char" true
          (try ignore (toks "a $ b"); false with Lex.Lex_error _ -> true);
        check_bool "unterminated comment" true
          (try ignore (toks "/* x"); false with Lex.Lex_error _ -> true));
    t "stream operations" (fun () ->
        let st =
          Lex.Stream.of_tokens
            (Lex.tokenize ~puncts:[ "("; ")" ] "foo ( bar )")
        in
        check_bool "peek" true (Lex.Stream.peek st = Lex.Ident "foo");
        check_bool "peek2" true (Lex.Stream.peek2 st = Lex.Punct "(");
        ignore (Lex.Stream.advance st);
        check_bool "accept" true (Lex.Stream.accept_punct st "(");
        check_bool "expect ident" true (Lex.Stream.expect_ident st = "bar");
        Lex.Stream.eat_punct st ")";
        check_bool "eof" true (Lex.Stream.at_eof st);
        check_bool "advance at eof stays" true
          (Lex.Stream.advance st = Lex.Eof && Lex.Stream.advance st = Lex.Eof));
    t "case-insensitive keyword accept" (fun () ->
        let st =
          Lex.Stream.of_tokens (Lex.tokenize ~puncts:[] "WHERE Where where")
        in
        check_bool "1" true (Lex.Stream.accept_ident st "where");
        check_bool "2" true (Lex.Stream.accept_ident st "WHERE");
        check_bool "3" true (Lex.Stream.accept_ident st "Where"));
  ]
