open Sgraph
open Schema

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* r -a-> x1, r -a-> x2, x1 -b-> y, x2 -b-> y, x2 -c-> z *)
let diamond () =
  let g = Graph.create ~name:"dg" () in
  let r = Graph.new_node g "r" in
  let x1 = Graph.new_node g "x1" in
  let x2 = Graph.new_node g "x2" in
  let y = Graph.new_node g "y" in
  let z = Graph.new_node g "z" in
  Graph.add_edge g r "a" (Graph.N x1);
  Graph.add_edge g r "a" (Graph.N x2);
  Graph.add_edge g x1 "b" (Graph.N y);
  Graph.add_edge g x2 "b" (Graph.N y);
  Graph.add_edge g x2 "c" (Graph.N z);
  (g, r)

let suite =
  [
    t "diamond: subsets merge" (fun () ->
        let g, r = diamond () in
        let dg = Dataguide.of_graph ~roots:[ r ] g in
        (* states: {r}, {x1,x2}, {y}, {z} *)
        check_int "4 states" 4 (Dataguide.state_count dg);
        check_int "a reaches both" 2 (Dataguide.extent_size dg [ "a" ]);
        check_int "a.b reaches y" 1 (Dataguide.extent_size dg [ "a"; "b" ]);
        check_int "a.c reaches z" 1 (Dataguide.extent_size dg [ "a"; "c" ]));
    t "accepts exactly the data's label paths" (fun () ->
        let g, r = diamond () in
        let dg = Dataguide.of_graph ~roots:[ r ] g in
        check_bool "a.b" true (Dataguide.accepts_path dg [ "a"; "b" ]);
        check_bool "a.c" true (Dataguide.accepts_path dg [ "a"; "c" ]);
        check_bool "no b at root" false (Dataguide.accepts_path dg [ "b" ]);
        check_bool "no a.b.a" false (Dataguide.accepts_path dg [ "a"; "b"; "a" ]));
    t "value-only attributes appear as paths" (fun () ->
        let g = Graph.create () in
        let r = Graph.new_node g "r" in
        Graph.add_edge g r "title" (Graph.V (Value.String "x"));
        let dg = Dataguide.of_graph ~roots:[ r ] g in
        check_bool "title path" true (Dataguide.accepts_path dg [ "title" ]);
        check_int "no objects behind it" 0 (Dataguide.extent_size dg [ "title" ]));
    t "cycles terminate" (fun () ->
        let g = Graph.create () in
        let a = Graph.new_node g "a" and b = Graph.new_node g "b" in
        Graph.add_edge g a "n" (Graph.N b);
        Graph.add_edge g b "n" (Graph.N a);
        let dg = Dataguide.of_graph ~roots:[ a ] g in
        check_bool "finite" true (Dataguide.state_count dg <= 3);
        check_bool "long path accepted" true
          (Dataguide.accepts_path dg [ "n"; "n"; "n"; "n"; "n" ]));
    t "paths_up_to enumerates distinct label paths" (fun () ->
        let g, r = diamond () in
        let dg = Dataguide.of_graph ~roots:[ r ] g in
        let paths = Dataguide.paths_up_to dg 2 in
        check_bool "a" true (List.mem [ "a" ] paths);
        check_bool "a.b" true (List.mem [ "a"; "b" ] paths);
        check_bool "a.c" true (List.mem [ "a"; "c" ] paths);
        check_int "exactly 3" 3 (List.length paths));
    t "default roots are sources" (fun () ->
        let g, _ = diamond () in
        let dg = Dataguide.of_graph g in
        (* r is the only node without incoming edges *)
        check_int "root extent" 1
          (Oid.Set.cardinal (Dataguide.root_state dg).Dataguide.extent));
    t "agrees with NFA path evaluation on the paper data" (fun () ->
        let g, _ = Ddl.parse Sites.Paper_example.data_ddl in
        let roots = Graph.collection g "Publications" in
        let dg = Dataguide.of_graph ~roots g in
        (* every guide path of length <= 2 is realizable via Path.eval *)
        List.iter
          (fun path ->
            let r = Path.seq_all (List.map (fun l -> Path.Edge (Path.Label l)) path) in
            let reachable =
              List.exists
                (fun src -> Path.eval_from g r src <> [])
                roots
            in
            check_bool (String.concat "." path) true reachable)
          (Dataguide.paths_up_to dg 2));
    t "extent sizes estimate join cardinalities" (fun () ->
        let g = Wrappers.Synth.news_graph ~articles:50 () in
        let dg = Dataguide.of_graph ~roots:(Graph.collection g "Articles") g in
        (* "related" leads back to articles *)
        check_bool "related extent <= 50" true
          (Dataguide.extent_size dg [ "related" ] <= 50);
        check_bool "related extent > 0" true
          (Dataguide.extent_size dg [ "related" ] > 0));
    t "max_states bound raises" (fun () ->
        let g, r = diamond () in
        check_bool "raises" true
          (try
             ignore (Dataguide.of_graph ~roots:[ r ] ~max_states:2 g);
             false
           with Dataguide.Too_large _ -> true));
  ]
