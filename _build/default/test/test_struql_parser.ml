open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Parser.parse
let parse_conds = Parser.parse_conditions

let queries =
  [
    t "minimal query defaults" (fun () ->
        let q = parse "WHERE C(x) COLLECT D(x)" in
        check_bool "input" true (q.Ast.input = [ "input" ]);
        check_bool "output" true (q.Ast.output = "output");
        check_int "1 block" 1 (List.length q.Ast.blocks));
    t "input/output names" (fun () ->
        let q = parse "INPUT A, B WHERE C(x) COLLECT D(x) OUTPUT R" in
        check_bool "inputs" true (q.Ast.input = [ "A"; "B" ]);
        check_bool "output" true (q.Ast.output = "R"));
    t "fig3 shape" (fun () ->
        let q = parse Sites.Paper_example.site_query in
        check_int "2 top blocks" 2 (List.length q.Ast.blocks);
        let b2 = List.nth q.Ast.blocks 1 in
        check_int "2 nested" 2 (List.length b2.Ast.nested);
        check_int "link clauses" 11 (Ast.query_link_count q);
        check_bool "skolems" true
          (List.sort compare (Ast.query_created_skolems q)
           = [ "AbstractPage"; "AbstractsPage"; "CategoryPage";
               "PaperPresentation"; "RootPage"; "YearPage" ]));
    t "intermixed clauses join one block" (fun () ->
        let q =
          parse
            {|WHERE C(x) CREATE F(x) WHERE x -> "a" -> y LINK F(x) -> "b" -> y|}
        in
        check_int "1 block" 1 (List.length q.Ast.blocks);
        let b = List.hd q.Ast.blocks in
        check_int "2 conds" 2 (List.length b.Ast.where);
        check_int "1 create" 1 (List.length b.Ast.create);
        check_int "1 link" 1 (List.length b.Ast.link));
    t "separators , and ; both work" (fun () ->
        let cs = parse_conds {|C(x); x -> "a" -> y, D(y)|} in
        check_int "3 conds" 3 (List.length cs));
  ]

let conditions =
  [
    t "membership atom" (fun () ->
        match parse_conds "HomePages(p)" with
        | [ Ast.C_atom ("HomePages", [ Ast.T_var "p" ]) ] -> ()
        | _ -> Alcotest.fail "bad atom");
    t "external predicate atom" (fun () ->
        match parse_conds "isPostScript(q)" with
        | [ Ast.C_atom ("isPostScript", [ Ast.T_var "q" ]) ] -> ()
        | _ -> Alcotest.fail "bad atom");
    t "edge with label variable" (fun () ->
        match parse_conds "x -> l -> y" with
        | [ Ast.C_edge (Ast.T_var "x", Ast.L_var "l", Ast.T_var "y") ] -> ()
        | _ -> Alcotest.fail "bad edge");
    t "edge with label constant" (fun () ->
        match parse_conds {|x -> "Paper" -> y|} with
        | [ Ast.C_edge (_, Ast.L_const "Paper", _) ] -> ()
        | _ -> Alcotest.fail "bad edge");
    t "chain produces multiple conditions" (fun () ->
        match parse_conds {|x -> "a" -> y -> l -> z -> "b" -> w|} with
        | [ Ast.C_edge (Ast.T_var "x", Ast.L_const "a", Ast.T_var "y");
            Ast.C_edge (Ast.T_var "y", Ast.L_var "l", Ast.T_var "z");
            Ast.C_edge (Ast.T_var "z", Ast.L_const "b", Ast.T_var "w") ] ->
          ()
        | _ -> Alcotest.fail "bad chain");
    t "star path" (fun () ->
        match parse_conds "x -> * -> y" with
        | [ Ast.C_path (_, Sgraph.Path.Star (Sgraph.Path.Edge Sgraph.Path.Any), _) ] -> ()
        | _ -> Alcotest.fail "bad star");
    t "true path is single any edge" (fun () ->
        match parse_conds "x -> true -> y" with
        | [ Ast.C_path (_, Sgraph.Path.Edge Sgraph.Path.Any, _) ] -> ()
        | _ -> Alcotest.fail "bad true");
    t "rpe concatenation and alternation" (fun () ->
        match parse_conds {|x -> "a"."b" | "c" -> y|} with
        | [ Ast.C_path (_, Sgraph.Path.Alt (Sgraph.Path.Seq _, _), _) ] -> ()
        | _ -> Alcotest.fail "bad rpe");
    t "rpe postfix star on label" (fun () ->
        match parse_conds {|x -> "a"* -> y|} with
        | [ Ast.C_path (_, Sgraph.Path.Star (Sgraph.Path.Edge (Sgraph.Path.Label "a")), _) ] -> ()
        | _ -> Alcotest.fail "bad star label");
    t "label predicate in rpe" (fun () ->
        match parse_conds "x -> isName* -> y" with
        | [ Ast.C_path (_, Sgraph.Path.Star (Sgraph.Path.Edge (Sgraph.Path.Named_pred ("isName", _))), _) ] -> ()
        | _ -> Alcotest.fail "bad pred");
    t "unknown label predicate rejected" (fun () ->
        check_bool "raises" true
          (try ignore (parse_conds "x -> noSuchPred* -> y"); false
           with Parser.Parse_error _ -> true));
    t "comparisons" (fun () ->
        match parse_conds {|l = "year", n < 5, m >= 2, k != "x"|} with
        | [ Ast.C_cmp (Ast.Eq, _, _); Ast.C_cmp (Ast.Lt, _, _);
            Ast.C_cmp (Ast.Ge, _, _); Ast.C_cmp (Ast.Ne, _, _) ] ->
          ()
        | _ -> Alcotest.fail "bad cmp");
    t "in condition" (fun () ->
        match parse_conds {|l in {"Paper", "TechReport"}|} with
        | [ Ast.C_in (Ast.T_var "l", [ Sgraph.Value.String "Paper"; Sgraph.Value.String "TechReport" ]) ] -> ()
        | _ -> Alcotest.fail "bad in");
    t "negation" (fun () ->
        match parse_conds "not(isImageFile(v))" with
        | [ Ast.C_not (Ast.C_atom ("isImageFile", _)) ] -> ()
        | _ -> Alcotest.fail "bad not");
    t "negated edge" (fun () ->
        match parse_conds "not(p -> l -> q)" with
        | [ Ast.C_not (Ast.C_edge _) ] -> ()
        | _ -> Alcotest.fail "bad negated edge");
    t "negation of chain rejected" (fun () ->
        check_bool "raises" true
          (try ignore (parse_conds {|not(p -> "a" -> q -> "b" -> r)|}); false
           with Parser.Parse_error _ -> true));
    t "literals as terms" (fun () ->
        match parse_conds {|x -> "year" -> 1997, y -> "f" -> 2.5, z -> "b" -> true|} with
        | [ Ast.C_edge (_, _, Ast.T_const (Sgraph.Value.Int 1997));
            Ast.C_edge (_, _, Ast.T_const (Sgraph.Value.Float 2.5));
            Ast.C_edge (_, _, Ast.T_const (Sgraph.Value.Bool true)) ] ->
          ()
        | _ -> Alcotest.fail "bad literals");
  ]

let construction =
  [
    t "create with args" (fun () ->
        let q = parse {|WHERE C(x) CREATE F(), G(x), H(x, "k")|} in
        let b = List.hd q.Ast.blocks in
        check_int "3 creates" 3 (List.length b.Ast.create);
        check_bool "arities" true
          (List.map (fun (f, args) -> (f, List.length args)) b.Ast.create
           = [ ("F", 0); ("G", 1); ("H", 2) ]));
    t "link with skolem endpoints" (fun () ->
        let q =
          parse {|WHERE C(x) CREATE F(x), G(x) LINK F(x) -> "a" -> G(x)|}
        in
        let b = List.hd q.Ast.blocks in
        match b.Ast.link with
        | [ (Ast.T_skolem ("F", _), Ast.L_const "a", Ast.T_skolem ("G", _)) ] ->
          ()
        | _ -> Alcotest.fail "bad link");
    t "link with label variable" (fun () ->
        let q = parse {|WHERE x -> l -> v CREATE F(x) LINK F(x) -> l -> v|} in
        let b = List.hd q.Ast.blocks in
        match b.Ast.link with
        | [ (_, Ast.L_var "l", Ast.T_var "v") ] -> ()
        | _ -> Alcotest.fail "bad link label");
    t "nested skolem in link target" (fun () ->
        let q =
          parse
            {|WHERE C(y), y -> "Author" -> u
              CREATE Authors(), Page(u)
              LINK Authors() -> "Author" -> Page(u)|}
        in
        let b = List.hd q.Ast.blocks in
        match b.Ast.link with
        | [ (Ast.T_skolem ("Authors", []), _, Ast.T_skolem ("Page", [ Ast.T_var "u" ])) ] -> ()
        | _ -> Alcotest.fail "bad nested skolem");
    t "collect" (fun () ->
        let q = parse {|WHERE C(x) CREATE F(x) COLLECT Out(F(x)), Plain(x)|} in
        let b = List.hd q.Ast.blocks in
        check_int "2 collects" 2 (List.length b.Ast.collect));
  ]

let errors =
  let expect name src =
    t name (fun () ->
        check_bool "raises" true
          (try ignore (parse src); false with Parser.Parse_error _ -> true))
  in
  [
    expect "unclosed block" "{ WHERE C(x) COLLECT D(x)";
    expect "garbage after query" "WHERE C(x) COLLECT D(x) OUTPUT r zzz";
    expect "create of bare var" "WHERE C(x) CREATE x";
    expect "missing arrow" {|WHERE x -> "a" y COLLECT C(x)|};
    expect "bad in list" "WHERE l in {} COLLECT C(l)";
  ]

(* pretty-print / re-parse fixpoint *)
let roundtrip_corpus =
  [
    Sites.Paper_example.site_query;
    Sites.Cnn.general_query;
    Sites.Cnn.sports_only_query;
    Sites.Cnn.text_only_copy_query;
    Sites.Homepage.site_query;
    Sites.Org.site_query;
    {|WHERE not(p -> le -> q) CREATE F(p), F(q) LINK F(p) -> le -> F(q) OUTPUT Comp|};
    {|WHERE C(x), x -> "a".("b" | "c")*."d"? -> y, x -> isName+ -> z,
            y != z, n >= 2, l in {"u", "v"}
      CREATE F(x) LINK F(x) -> "r" -> y COLLECT Out(F(x)) OUTPUT O|};
  ]

let roundtrip =
  List.mapi
    (fun i src ->
      t (Printf.sprintf "pretty/parse fixpoint %d" i) (fun () ->
          let q = parse src in
          let printed = Pretty.to_string q in
          let q2 = parse printed in
          check_bool "equal" true (Pretty.query_equal q q2);
          (* and printing again is stable *)
          Alcotest.(check string) "stable" printed (Pretty.to_string q2)))
    roundtrip_corpus

let suite = queries @ conditions @ construction @ errors @ roundtrip
