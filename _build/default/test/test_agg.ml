(* The grouping/aggregation extension (§5.2). *)

open Sgraph
open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let data () =
  let g = Graph.create ~name:"d" () in
  let mk name year pages cat =
    let o = Graph.new_node g name in
    Graph.add_to_collection g "Pubs" o;
    Graph.add_edge g o "year" (Graph.V (Value.Int year));
    Graph.add_edge g o "pages" (Graph.V (Value.Int pages));
    List.iter
      (fun c -> Graph.add_edge g o "cat" (Graph.V (Value.String c)))
      cat;
    o
  in
  ignore (mk "a" 1997 10 [ "db" ]);
  ignore (mk "b" 1997 20 [ "db"; "pl" ]);
  ignore (mk "c" 1998 30 [ "pl" ]);
  g

let run g src = Eval.run g (Parser.parse src)

let attr_val out name l =
  let o = Option.get (Graph.find_node out name) in
  Graph.attr_value out o l

let suite =
  [
    t "count groups by source skolem term" (fun () ->
        let out =
          run (data ())
            {|WHERE Pubs(x), x -> "year" -> y
              CREATE Y(y)
              LINK Y(y) -> "n" -> count(x), Y(y) -> "Year" -> y
              COLLECT Ys(Y(y)) OUTPUT o|}
        in
        check_bool "1997 has 2" true
          (attr_val out "Y(1997)" "n" = Some (Value.Int 2));
        check_bool "1998 has 1" true
          (attr_val out "Y(1998)" "n" = Some (Value.Int 1)));
    t "count is over distinct values" (fun () ->
        (* publications counted once per category-pair join row, but
           count(x) is distinct in x *)
        let out =
          run (data ())
            {|WHERE Pubs(x), x -> "cat" -> c
              CREATE All()
              LINK All() -> "pubsWithCat" -> count(x),
                   All() -> "cats" -> count(c)
              COLLECT As(All()) OUTPUT o|}
        in
        check_bool "3 pubs" true
          (attr_val out "All()" "pubsWithCat" = Some (Value.Int 3));
        check_bool "2 cats" true
          (attr_val out "All()" "cats" = Some (Value.Int 2)));
    t "sum min max avg" (fun () ->
        let out =
          run (data ())
            {|WHERE Pubs(x), x -> "pages" -> p
              CREATE S()
              LINK S() -> "total" -> sum(p), S() -> "lo" -> min(p),
                   S() -> "hi" -> max(p), S() -> "mean" -> avg(p)
              COLLECT Ss(S()) OUTPUT o|}
        in
        check_bool "sum" true (attr_val out "S()" "total" = Some (Value.Int 60));
        check_bool "min" true (attr_val out "S()" "lo" = Some (Value.Int 10));
        check_bool "max" true (attr_val out "S()" "hi" = Some (Value.Int 30));
        check_bool "avg" true
          (attr_val out "S()" "mean" = Some (Value.Float 20.)));
    t "aggregate over empty group yields no edge" (fun () ->
        let out =
          run (data ())
            {|WHERE Pubs(x), x -> "nosuch" -> v
              CREATE S()
              LINK S() -> "n" -> count(v)
              COLLECT Ss(S()) OUTPUT o|}
        in
        (* the where clause never matches: no S() at all *)
        check_int "no nodes" 0 (Graph.node_count out));
    t "min/max over strings" (fun () ->
        let out =
          run (data ())
            {|WHERE Pubs(x), x -> "cat" -> c
              CREATE S()
              LINK S() -> "first" -> min(c), S() -> "last" -> max(c)
              COLLECT Ss(S()) OUTPUT o|}
        in
        check_bool "min" true
          (attr_val out "S()" "first" = Some (Value.String "db"));
        check_bool "max" true
          (attr_val out "S()" "last" = Some (Value.String "pl")));
    t "aggregates in nested blocks group per conjunction" (fun () ->
        let out =
          run (data ())
            {|WHERE Pubs(x), x -> "year" -> y
              CREATE Y(y)
              COLLECT Ys(Y(y))
              { WHERE x -> "cat" -> c
                LINK Y(y) -> "catCount" -> count(c) }
              OUTPUT o|}
        in
        check_bool "1997: db,pl" true
          (attr_val out "Y(1997)" "catCount" = Some (Value.Int 2));
        check_bool "1998: pl" true
          (attr_val out "Y(1998)" "catCount" = Some (Value.Int 1)));
    t "parser: aggregate names, skolem names unaffected" (fun () ->
        let q =
          Parser.parse
            {|WHERE C(x) CREATE Counter(x) LINK Counter(x) -> "n" -> count(x)|}
        in
        let b = List.hd q.Ast.blocks in
        check_bool "create is skolem" true
          (match b.Ast.create with [ ("Counter", _) ] -> true | _ -> false);
        match b.Ast.link with
        | [ (_, _, Ast.T_agg (Ast.Count, Ast.T_var "x")) ] -> ()
        | _ -> Alcotest.fail "bad agg parse");
    t "parser: aggregate arity enforced" (fun () ->
        check_bool "raises" true
          (try
             ignore (Parser.parse {|WHERE C(x) CREATE F(x) LINK F(x) -> "n" -> count(x, x)|});
             false
           with Parser.Parse_error _ -> true));
    t "pretty-printer roundtrips aggregates" (fun () ->
        let src =
          {|WHERE C(x), x -> "p" -> v CREATE F(x) LINK F(x) -> "s" -> sum(v) OUTPUT o|}
        in
        let q = Parser.parse src in
        check_bool "fixpoint" true
          (Pretty.query_equal q (Parser.parse (Pretty.to_string q))));
    t "check: aggregates only as link targets" (fun () ->
        let bad where_q =
          let q = Parser.parse where_q in
          List.exists
            (function Check.Agg_misplaced _ -> true | _ -> false)
            (Check.check q).Check.errors
        in
        check_bool "in create" true
          (bad {|WHERE C(x) CREATE F(count(x))|});
        check_bool "in collect" true
          (bad {|WHERE C(x) CREATE F(x) COLLECT Out(count(x))|});
        check_bool "as link source" true
          (bad {|WHERE C(x) CREATE F(x) LINK count(x) -> "n" -> F(x)|});
        check_bool "valid as target" false
          (bad {|WHERE C(x) CREATE F(x) LINK F(x) -> "n" -> count(x)|}));
    t "site schema handles aggregate targets" (fun () ->
        let q =
          Parser.parse
            {|WHERE C(x), x -> "p" -> v CREATE F(x) LINK F(x) -> "s" -> sum(v) OUTPUT o|}
        in
        let s = Schema.Site_schema.of_query q in
        check_int "edge to NS" 1 (List.length (Schema.Site_schema.edges s));
        (* and recovery keeps the aggregate *)
        let q' = Schema.Site_schema.to_query s in
        let g = data () in
        let census g' = (Graph.node_count g', Graph.edge_count g') in
        check_bool "recovered equal" true
          (census (Eval.run g (Parser.parse (Pretty.to_string q')))
           = census (Eval.run g q)));
    t "click-time computes the same aggregates" (fun () ->
        let g = data () in
        let def =
          Strudel.Site.define ~name:"agg" ~root_family:"Root"
            [
              ( "site",
                {|{ CREATE Root() COLLECT Roots(Root()) }
                  { WHERE Pubs(x), x -> "year" -> y
                    CREATE Y(y)
                    LINK Y(y) -> "n" -> count(x), Y(y) -> "Year" -> y,
                         Root() -> "Year" -> Y(y)
                    COLLECT Ys(Y(y)) }
                  OUTPUT agg|} );
            ]
        in
        let full = Strudel.Site.build ~data:g def in
        let ct = Strudel.Materialize.Click_time.start ~data:g def in
        let root = List.hd (Strudel.Materialize.Click_time.roots ct) in
        ignore (Strudel.Materialize.Click_time.browse ct root);
        (* expand the year pages *)
        List.iter
          (fun o -> Strudel.Materialize.Click_time.expand ct o)
          (Graph.nodes ct.Strudel.Materialize.Click_time.partial);
        let count_of g' name =
          match Graph.find_node g' name with
          | Some o -> Graph.attr_value g' o "n"
          | None -> None
        in
        check_bool "1997 matches" true
          (count_of ct.Strudel.Materialize.Click_time.partial "Y(1997)"
           = count_of full.Strudel.Site.site_graph "Y(1997)");
        check_bool "value is 2" true
          (count_of full.Strudel.Site.site_graph "Y(1997)"
           = Some (Value.Int 2)));
    t "strategies agree on aggregates" (fun () ->
        let src =
          {|WHERE Pubs(x), x -> "year" -> y, x -> "cat" -> c
            CREATE Y(y) LINK Y(y) -> "nc" -> count(c) COLLECT Ys(Y(y)) OUTPUT o|}
        in
        let census strategy =
          let out =
            Eval.run
              ~options:{ Eval.default_options with strategy }
              (data ()) (Parser.parse src)
          in
          List.sort compare
            (List.map
               (fun o -> (Oid.name o, Graph.attr_value out o "nc"))
               (Graph.nodes out))
        in
        check_bool "all equal" true
          (census Plan.Naive = census Plan.Heuristic
           && census Plan.Heuristic = census Plan.Cost_based));
  ]
