test/test_graph.ml: Alcotest Array Fmt Graph List Oid QCheck QCheck_alcotest Sgraph Value
