test/test_value.ml: Alcotest Ddl Float Graph List Option Printf QCheck QCheck_alcotest Sgraph Value
