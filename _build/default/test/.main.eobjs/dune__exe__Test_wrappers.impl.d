test/test_wrappers.ml: Alcotest Graph List Option Sgraph String Value Wrappers
