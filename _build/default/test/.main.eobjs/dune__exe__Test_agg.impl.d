test/test_agg.ml: Alcotest Ast Check Eval Graph List Oid Option Parser Plan Pretty Schema Sgraph Strudel Struql Value
