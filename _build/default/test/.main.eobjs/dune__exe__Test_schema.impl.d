test/test_schema.ml: Alcotest Ast Check Eval List Parser Schema Sgraph Sites String Struql Wrappers
