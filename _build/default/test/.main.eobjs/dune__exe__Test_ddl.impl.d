test/test_ddl.ml: Alcotest Array Ddl Graph List Oid Option Printf QCheck QCheck_alcotest Sgraph Sites Strudel Value
