test/test_generator.ml: Alcotest Array Filename Generator Graph List Option Sgraph String Sys Template Value
