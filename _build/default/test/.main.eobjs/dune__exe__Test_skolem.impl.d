test/test_skolem.ml: Alcotest List Oid Sgraph Skolem Value
