test/test_decompose.ml: Alcotest Check Ddl Eval Graph List Parser Pretty Schema Sgraph Sites String Struql Wrappers
