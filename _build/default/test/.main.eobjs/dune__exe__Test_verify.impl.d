test/test_verify.ml: Alcotest Graph List Oid Option Schema Sgraph Site_schema Sites Struql Value Verify
