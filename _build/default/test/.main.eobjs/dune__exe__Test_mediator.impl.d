test/test_mediator.ml: Alcotest Graph List Mediator Sgraph Value
