test/test_plan.ml: Alcotest Ast Builtins Eval Float Graph List Parser Plan Printf Sgraph String Struql Value
