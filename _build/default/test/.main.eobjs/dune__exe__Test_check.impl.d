test/test_check.ml: Alcotest Check List Parser Sites Struql
