test/test_xml.ml: Alcotest Ddl Graph List Oid Option Sgraph Sites String Strudel Value Xml
