test/test_materialize.ml: Alcotest Graph List Materialize Oid Sgraph Site Sites Skolem Strudel Template
