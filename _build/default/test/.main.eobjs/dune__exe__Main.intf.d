test/main.mli:
