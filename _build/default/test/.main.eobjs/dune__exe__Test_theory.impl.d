test/test_theory.ml: Alcotest Eval Graph List Parser Printf QCheck QCheck_alcotest Set Sgraph String Struql Value
