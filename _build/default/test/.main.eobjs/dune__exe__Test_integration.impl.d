test/test_integration.ml: Alcotest Baseline Graph List Mediator Oid Schema Sgraph Sites String Strudel Template Value
