test/test_eval.ml: Alcotest Array Check Ddl Eval Graph List Oid Parser Plan Printf QCheck QCheck_alcotest Sgraph Sites Skolem Struql Value
