test/test_binary.ml: Alcotest Array Binary Ddl Filename Graph List Oid Printf QCheck QCheck_alcotest Repository Sgraph Sites String Strudel Sys Value Wrappers
