test/test_incremental.ml: Alcotest Graph Incremental List Oid Option Sgraph Site Sites Strudel Template Value
