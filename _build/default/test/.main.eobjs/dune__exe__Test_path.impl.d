test/test_path.ml: Alcotest Array Fmt Graph List Oid Option Path QCheck QCheck_alcotest Sgraph Value
