test/test_repository.ml: Alcotest Array Ddl Filename Graph List Repository Sgraph Sites Strudel Sys Value
