test/test_algo.ml: Alcotest Algo Graph List Oid Printf Sgraph
