test/test_eval_ref.ml: Alcotest Array Ast Builtins Eval Graph List Oid Parser Path Printf QCheck QCheck_alcotest Sgraph Struql Value
