test/test_dataguide.ml: Alcotest Dataguide Ddl Graph List Oid Path Schema Sgraph Sites String Value Wrappers
