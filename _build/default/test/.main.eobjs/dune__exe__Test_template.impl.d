test/test_template.ml: Alcotest Buffer Char Graph Oid QCheck QCheck_alcotest Sgraph String Template Teval Tparse Value
