test/test_lex.ml: Alcotest Lex List Sgraph
