test/test_end_to_end_props.ml: Graph List Oid Printf QCheck QCheck_alcotest Schema Sgraph Sites Strudel Struql Template Value
