test/test_cli.ml: Alcotest Array Filename List Sites String Sys
