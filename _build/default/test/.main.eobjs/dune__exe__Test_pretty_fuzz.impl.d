test/test_pretty_fuzz.ml: Ast Builtins Check Eval Graph List Option Parser Path Plan Pretty QCheck QCheck_alcotest Sgraph Struql Value Wrappers
