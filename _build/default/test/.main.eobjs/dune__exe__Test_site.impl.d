test/test_site.ml: Alcotest Graph List Oid Option Schema Sgraph Sites String Strudel Template
