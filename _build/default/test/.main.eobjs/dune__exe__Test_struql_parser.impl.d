test/test_struql_parser.ml: Alcotest Ast List Parser Pretty Printf Sgraph Sites Struql
