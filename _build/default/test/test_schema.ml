open Struql

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig3_schema () =
  Schema.Site_schema.of_query (Parser.parse Sites.Paper_example.site_query)

let edge_sig (e : Schema.Site_schema.edge) =
  ( Schema.Site_schema.node_name e.src,
    Schema.Site_schema.node_name e.dst,
    (match e.label with Ast.L_const s -> s | Ast.L_var v -> v),
    String.concat "^" e.query_ids )

let derivation =
  [
    t "fig5: nodes are skolem families plus NS" (fun () ->
        let s = fig3_schema () in
        check_int "7 nodes" 7 (List.length (Schema.Site_schema.nodes s));
        Alcotest.(check (list string)) "families"
          [ "RootPage"; "AbstractsPage"; "PaperPresentation"; "AbstractPage";
            "YearPage"; "CategoryPage" ]
          (Schema.Site_schema.skolem_functions s));
    t "fig5: edges with conjoined query labels" (fun () ->
        let s = fig3_schema () in
        let sigs = List.map edge_sig (Schema.Site_schema.edges s) in
        check_int "11 edges" 11 (List.length sigs);
        check_bool "root->abstracts unconditioned" true
          (List.mem ("RootPage", "AbstractsPage", "AbstractsPage", "") sigs);
        check_bool "yearpage paper edge labeled Q1^Q2" true
          (List.mem ("YearPage", "PaperPresentation", "Paper", "Q1^Q2") sigs);
        check_bool "categorypage edge labeled Q1^Q3" true
          (List.mem ("RootPage", "CategoryPage", "CategoryPage", "Q1^Q3") sigs);
        check_bool "attribute copies go to NS" true
          (List.mem ("PaperPresentation", "NS", "l", "Q1") sigs));
    t "NS edges keep the target term" (fun () ->
        let s = fig3_schema () in
        let ns_edge =
          List.find
            (fun (e : Schema.Site_schema.edge) -> e.dst = Schema.Site_schema.NS)
            (Schema.Site_schema.edges s)
        in
        check_bool "dst term recorded" true
          (match ns_edge.dst_args with [ Ast.T_var _ ] -> true | _ -> false));
    t "schema of query without links has only create families" (fun () ->
        let s =
          Schema.Site_schema.of_query
            (Parser.parse {|WHERE C(x) CREATE F(x) COLLECT Fs(F(x))|})
        in
        check_int "F + NS" 2 (List.length (Schema.Site_schema.nodes s));
        check_int "no edges" 0 (List.length (Schema.Site_schema.edges s)));
    t "reachable_from over schema" (fun () ->
        let s = fig3_schema () in
        let reach = Schema.Site_schema.reachable_from s (Schema.Site_schema.NF "RootPage") in
        (* every family + NS reachable from the root *)
        check_int "all 7" 7 (List.length reach));
  ]

let recovery =
  let census g =
    ( Sgraph.Graph.node_count g,
      Sgraph.Graph.edge_count g,
      List.sort compare
        (List.map (fun l -> (l, Sgraph.Graph.label_count g l)) (Sgraph.Graph.labels g)) )
  in
  let case name data_fn qsrc =
    t ("query recovery preserves semantics: " ^ name) (fun () ->
        let q = Parser.parse qsrc in
        let s = Schema.Site_schema.of_query q in
        let q' = Schema.Site_schema.to_query s in
        let g = data_fn () in
        check_bool "same site graph census" true
          (census (Eval.run g q) = census (Eval.run g q')))
  in
  [
    case "paper example"
      (fun () -> fst (Sgraph.Ddl.parse Sites.Paper_example.data_ddl))
      Sites.Paper_example.site_query;
    case "cnn"
      (fun () -> Wrappers.Synth.news_graph ~articles:30 ())
      Sites.Cnn.general_query;
    case "homepage" (fun () -> Sites.Homepage.data ~entries:10 ())
      Sites.Homepage.site_query;
    t "recovered query passes static checks" (fun () ->
        let q = Parser.parse Sites.Paper_example.site_query in
        let q' = Schema.Site_schema.to_query (Schema.Site_schema.of_query q) in
        check_bool "valid" true (Check.is_valid q'));
  ]

let output =
  [
    t "pp mentions conjunctions" (fun () ->
        let s = fig3_schema () in
        let str = Schema.Site_schema.to_string s in
        check_bool "Q1^Q2 printed" true
          (let needle = "Q1^Q2" in
           let n = String.length needle and h = String.length str in
           let rec find i = i + n <= h && (String.sub str i n = needle || find (i + 1)) in
           find 0));
    t "dot export shapes" (fun () ->
        let s = fig3_schema () in
        let dot = Schema.Dot.of_schema s in
        check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
        check_bool "NS box present" true
          (let needle = "NS [shape=box" in
           let n = String.length needle and h = String.length dot in
           let rec find i = i + n <= h && (String.sub dot i n = needle || find (i + 1)) in
           find 0));
    t "dot export of a graph" (fun () ->
        let g = fst (Sgraph.Ddl.parse Sites.Paper_example.data_ddl) in
        let dot = Schema.Dot.of_graph g in
        check_bool "nonempty digraph" true (String.sub dot 0 7 = "digraph"));
  ]

let suite = derivation @ recovery @ output
