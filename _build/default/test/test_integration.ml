(* End-to-end invariants on the three example sites and the baseline. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

let site_contains site needle =
  List.exists
    (fun (p : Template.Generator.page) -> contains p.Template.Generator.html needle)
    site.Template.Generator.pages

let homepage =
  [
    t "homepage: constraints hold" (fun () ->
        let b = Sites.Homepage.build ~entries:12 () in
        check_bool "clean" true (Strudel.Site.violations b = []));
    t "homepage: internal and external share the site graph" (fun () ->
        let internal, external_ = Sites.Homepage.build_both ~entries:12 () in
        check_bool "same graph" true
          (internal.Strudel.Site.site_graph == external_.Strudel.Site.site_graph));
    t "homepage: external hides patents and proprietary projects" (fun () ->
        let internal, external_ = Sites.Homepage.build_both ~entries:12 () in
        check_bool "internal shows patent number" true
          (site_contains internal.Strudel.Site.site "US0000001");
        check_bool "external hides patent number" false
          (site_contains external_.Strudel.Site.site "US0000001");
        check_bool "external hides proprietary project" false
          (site_contains external_.Strudel.Site.site "MLRISC");
        check_bool "internal shows phone" true
          (site_contains internal.Strudel.Site.site "+1 973 360 0000");
        check_bool "external hides phone" false
          (site_contains external_.Strudel.Site.site "+1 973 360 0000"));
    t "homepage: year and topic indexes exist" (fun () ->
        let b = Sites.Homepage.build ~entries:12 () in
        let sg = b.Strudel.Site.site_graph in
        check_bool "year indexes" true
          (Schema.Verify.family_members sg "YearIndex" <> []);
        check_bool "topic indexes" true
          (Schema.Verify.family_members sg "TopicIndex" <> []));
  ]

let cnn =
  [
    t "cnn: every section page links only its articles" (fun () ->
        let data = Sites.Cnn.data ~articles:60 () in
        let b = Strudel.Site.build ~data Sites.Cnn.definition in
        let sg = b.Strudel.Site.site_graph in
        List.iter
          (fun sp ->
            let name =
              match Graph.attr_value sg sp "Name" with
              | Some v -> Value.to_display_string v
              | None -> Alcotest.fail "section without name"
            in
            List.iter
              (fun tgt ->
                match tgt with
                | Graph.N ap ->
                  check_bool "article in section" true
                    (List.exists
                       (fun s ->
                         match s with
                         | Graph.V v -> Value.to_display_string v = name
                         | Graph.N _ -> false)
                       (Graph.attr sg ap "section"))
                | Graph.V _ -> ())
              (Graph.attr sg sp "Article"))
          (Schema.Verify.family_members sg "SectionPage"));
    t "cnn: sports-only is a strict subset" (fun () ->
        let data = Sites.Cnn.data ~articles:60 () in
        let general = Strudel.Site.build ~data Sites.Cnn.definition in
        let sports = Strudel.Site.build ~data Sites.Cnn.sports_definition in
        let count fam b =
          List.length
            (Schema.Verify.family_members b.Strudel.Site.site_graph fam)
        in
        check_int "1 section" 1 (count "SectionPage" sports);
        check_bool "fewer articles" true
          (count "ArticlePage" sports < count "ArticlePage" general);
        check_bool "sports articles positive" true
          (count "ArticlePage" sports > 0));
    t "cnn: sports pages only mention the sports section" (fun () ->
        let data = Sites.Cnn.data ~articles:60 () in
        let sports = Strudel.Site.build ~data Sites.Cnn.sports_definition in
        let sg = sports.Strudel.Site.site_graph in
        List.iter
          (fun sp ->
            check_bool "sports" true
              (Graph.attr_value sg sp "Name" = Some (Value.String "Sports")))
          (Schema.Verify.family_members sg "SectionPage"));
    t "cnn: text-only presentation drops every image" (fun () ->
        let data = Sites.Cnn.data ~articles:40 () in
        let general = Strudel.Site.build ~data Sites.Cnn.definition in
        let text = Strudel.Site.regenerate general Sites.Cnn.text_only_templates in
        check_bool "general has images" true
          (site_contains general.Strudel.Site.site "<img");
        check_bool "text-only has none" false
          (site_contains text.Strudel.Site.site "<img"));
    t "cnn: TextOnly derived query excludes image values" (fun () ->
        let data = Sites.Cnn.data ~articles:30 () in
        let b = Strudel.Site.build ~data Sites.Cnn.definition in
        let derived =
          Strudel.Api.query b.Strudel.Site.site_graph Sites.Cnn.text_only_copy_query
        in
        check_int "root collected" 1 (Graph.collection_size derived "TextOnlyRoot");
        check_bool "no image values" true
          (Graph.fold_edges
             (fun _ _ tgt acc ->
               acc
               && match tgt with
                  | Graph.V v -> not (Value.is_image v)
                  | Graph.N _ -> true)
             derived true));
    t "cnn vs baseline: same page universe" (fun () ->
        let data = Sites.Cnn.data ~articles:50 () in
        let b = Strudel.Site.build ~data Sites.Cnn.definition in
        let baseline = Baseline.Procedural.news_site data in
        (* strudel: front + bylineindex + sections + articles + reporters;
           baseline: index + sections + articles (no reporters/bylines) *)
        let sg = b.Strudel.Site.site_graph in
        let sections =
          List.length (Schema.Verify.family_members sg "SectionPage")
        in
        let articles =
          List.length (Schema.Verify.family_members sg "ArticlePage")
        in
        check_int "baseline count" (1 + sections + articles)
          (List.length baseline));
  ]

let org =
  [
    t "org: mediation integrates five collections" (fun () ->
        let _, w = Sites.Org.data ~people:40 ~orgs:4 ~projects:8 ~pubs:12 () in
        let m = Mediator.Warehouse.graph w in
        check_int "people" 40 (Graph.collection_size m "People");
        check_int "orgs" 4 (Graph.collection_size m "Orgs");
        check_int "projects" 8 (Graph.collection_size m "Projects");
        check_int "pubs" 12 (Graph.collection_size m "Publications");
        check_int "pages" 3 (Graph.collection_size m "Pages"));
    t "org: cross-source joins resolve" (fun () ->
        let _, w = Sites.Org.data ~people:40 ~orgs:4 ~projects:8 ~pubs:12 () in
        let m = Mediator.Warehouse.graph w in
        check_bool "project members" true (Graph.label_count m "Member" > 0);
        check_bool "org links" true (Graph.label_count m "Org" > 0);
        check_bool "directors" true (Graph.label_count m "Director" > 0));
    t "org: site constraints hold" (fun () ->
        let internal =
          Sites.Org.build ~people:40 ~orgs:4 ~projects:8 ~pubs:12 ()
        in
        check_bool "clean" true (Strudel.Site.violations internal = []));
    t "org: one person page per person" (fun () ->
        let internal =
          Sites.Org.build ~people:40 ~orgs:4 ~projects:8 ~pubs:12 ()
        in
        check_int "40 person pages" 40
          (List.length
             (Schema.Verify.family_members internal.Strudel.Site.site_graph
                "PersonPage")));
    t "org: external hides phones and intranet rosters" (fun () ->
        let internal, external_ =
          Sites.Org.build_both ~people:40 ~orgs:4 ~projects:8 ~pubs:12 ()
        in
        check_bool "internal has phones" true
          (site_contains internal.Strudel.Site.site "+1 973 360");
        check_bool "external hides phones" false
          (site_contains external_.Strudel.Site.site "+1 973 360");
        check_bool "internal intranet marker" true
          (site_contains internal.Strudel.Site.site "[INTERNAL ONLY]");
        check_bool "external intranet emptied" false
          (site_contains external_.Strudel.Site.site "[INTERNAL ONLY]"));
    t "org: proprietary projects select the named template" (fun () ->
        let internal =
          Sites.Org.build ~people:40 ~orgs:4 ~projects:20 ~pubs:5 ()
        in
        check_bool "internal warns" true
          (site_contains internal.Strudel.Site.site
             "[INTERNAL — proprietary project]"));
    t "org: legacy HTML pages flow through the wrapper" (fun () ->
        let internal =
          Sites.Org.build ~people:10 ~orgs:2 ~projects:3 ~pubs:3 ()
        in
        check_bool "visitors page content" true
          (site_contains internal.Strudel.Site.site "Directions to Florham Park"));
  ]

let rodin =
  [
    t "rodin: all cross-linking constraints hold" (fun () ->
        let b = Sites.Rodin.build () in
        check_bool "clean" true (Strudel.Site.violations b = []));
    t "rodin: English and French page families pair up" (fun () ->
        let b = Sites.Rodin.build ~extra_projects:6 () in
        let sg = b.Strudel.Site.site_graph in
        let n fam = List.length (Schema.Verify.family_members sg fam) in
        check_int "projects paired" (n "EnProject") (n "FrProject");
        check_int "people paired" (n "EnPerson") (n "FrPerson");
        check_bool "10 projects" true (n "EnProject" = 10));
    t "rodin: translation edges are mutual" (fun () ->
        let b = Sites.Rodin.build () in
        let sg = b.Strudel.Site.site_graph in
        List.iter
          (fun en ->
            match Graph.attr1 sg en "Translation" with
            | Some (Graph.N fr) ->
              check_bool "inverse" true
                (Graph.has_edge sg fr "Translation" (Graph.N en))
            | _ -> Alcotest.fail "missing translation")
          (Schema.Verify.family_members sg "EnProject"));
    t "rodin: each view renders its own language" (fun () ->
        let b = Sites.Rodin.build () in
        check_bool "english text" true
          (site_contains b.Strudel.Site.site "The Verso project");
        check_bool "french text" true
          (site_contains b.Strudel.Site.site "Le projet Verso"));
  ]

let aggregates_in_sites =
  [
    t "cnn: section pages carry article counts" (fun () ->
        let data = Sites.Cnn.data ~articles:60 () in
        let b = Strudel.Site.build ~data Sites.Cnn.definition in
        let sg = b.Strudel.Site.site_graph in
        let total =
          List.fold_left
            (fun acc sp ->
              match Graph.attr_value sg sp "ArticleCount" with
              | Some (Value.Int n) ->
                (* the count must equal the number of Article links *)
                check_int
                  ("count on " ^ Oid.name sp)
                  (List.length (Graph.attr sg sp "Article"))
                  n;
                acc + n
              | _ -> Alcotest.fail "missing ArticleCount")
            0
            (Schema.Verify.family_members sg "SectionPage")
        in
        (* multi-section articles are counted once per section *)
        check_bool "covers all articles" true (total >= 60);
        check_bool "rendered in pages" true
          (site_contains b.Strudel.Site.site "stories</i>"));
  ]

let baseline =
  [
    t "baseline homepage renders same publication count" (fun () ->
        let data = Sites.Paper_example.data () in
        let pages = Baseline.Procedural.homepage_site data in
        (* index + abstracts + 2 years + 3 cats + 2 abstract pages *)
        check_int "9 pages" 9 (List.length pages);
        check_bool "bytes" true (Baseline.Procedural.total_bytes pages > 0));
    t "baseline news site respects section filter" (fun () ->
        let data = Sites.Cnn.data ~articles:50 () in
        let all = Baseline.Procedural.news_site data in
        let sports =
          Baseline.Procedural.news_site ~sections_filter:(fun s -> s = "Sports")
            data
        in
        check_bool "fewer pages" true (List.length sports < List.length all));
  ]

let suite = homepage @ cnn @ org @ rodin @ aggregates_in_sites @ baseline
